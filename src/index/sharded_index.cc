#include "src/index/sharded_index.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "src/common/check.h"

namespace knnq {

namespace {

/// Recursively splits `points` into `shards` leaves, appending split
/// nodes and returning the encoded child link (~shard for a leaf).
/// Splits at the point-count median of the wider axis, biased so each
/// side receives a share proportional to its leaf count; the routing
/// predicate (coord < threshold goes lo) re-partitions the points so
/// build groups and later Route() calls agree exactly, duplicates and
/// boundary points included.
int BuildBisection(PointSet points, std::size_t shards,
                   std::vector<ShardPartition::SplitNode>* nodes,
                   std::size_t* next_shard) {
  if (shards == 1) {
    return ~static_cast<int>((*next_shard)++);
  }
  const std::size_t lo_shards = shards / 2;
  const std::size_t hi_shards = shards - lo_shards;

  const BoundingBox box = BoundingBox::Of(points);
  const int axis = box.width() >= box.height() ? 0 : 1;
  double threshold = 0.0;
  if (!points.empty()) {
    const std::size_t cut = points.size() * lo_shards / shards;
    const auto coord = [axis](const Point& p) {
      return axis == 0 ? p.x : p.y;
    };
    std::nth_element(points.begin(),
                     points.begin() + static_cast<std::ptrdiff_t>(cut),
                     points.end(), [&](const Point& a, const Point& b) {
                       return coord(a) < coord(b);
                     });
    threshold = coord(points[cut]);
  }

  PointSet lo_points, hi_points;
  for (const Point& p : points) {
    const double c = axis == 0 ? p.x : p.y;
    (c < threshold ? lo_points : hi_points).push_back(p);
  }
  points.clear();
  points.shrink_to_fit();

  const std::size_t slot = nodes->size();
  nodes->push_back({});
  const int lo = BuildBisection(std::move(lo_points), lo_shards, nodes,
                                next_shard);
  const int hi = BuildBisection(std::move(hi_points), hi_shards, nodes,
                                next_shard);
  (*nodes)[slot] = ShardPartition::SplitNode{
      .axis = axis, .threshold = threshold, .lo = lo, .hi = hi};
  return static_cast<int>(slot);
}

/// Merged lazy scan over every child's blocks in global key order. The
/// heap starts with one sentinel per non-empty shard keyed by
/// MINDIST(query, union of the shard's block boxes) — a lower bound on
/// any of that shard's block keys for either scan order, since every
/// block box is contained in the union by construction. A child's scan
/// object is created only when its sentinel pops; shards whose
/// sentinel never pops when the caller abandons the scan are the
/// pruned ones.
class ShardedBlockScan final : public BlockScan {
 public:
  ShardedBlockScan(const ShardedIndex& owner,
                   const std::vector<std::size_t>& block_offset,
                   const Point& query, ScanOrder order)
      : owner_(owner),
        block_offset_(block_offset),
        query_(query),
        order_(order),
        scans_(owner.num_shards()) {
    for (std::size_t s = 0; s < owner_.num_shards(); ++s) {
      const SpatialIndex& child = owner_.shard(s);
      if (child.num_blocks() == 0) continue;
      ++non_empty_;
      heap_.push(Entry{.key = owner.ShardScanBounds(s).MinDist(query_),
                       .shard = s,
                       .block = kInvalidBlockId,
                       .sentinel = true});
    }
  }

  bool HasNext() override {
    // Sentinels always precede at least one real block (only non-empty
    // shards get one), so a non-empty heap means a block remains.
    return !heap_.empty();
  }

  BlockId Next(double* key_dist) override {
    for (;;) {
      KNNQ_DCHECK(!heap_.empty());
      const Entry top = heap_.top();
      heap_.pop();
      if (top.sentinel) {
        ++opened_;
        auto scan = owner_.shard(top.shard).NewScan(query_, order_);
        PushNextOf(top.shard, *scan);
        scans_[top.shard] = std::move(scan);
        continue;
      }
      PushNextOf(top.shard, *scans_[top.shard]);
      *key_dist = top.key;
      return static_cast<BlockId>(block_offset_[top.shard] + top.block);
    }
  }

  std::size_t shards_pruned() const override { return non_empty_ - opened_; }

 private:
  struct Entry {
    double key = 0.0;
    std::size_t shard = 0;
    BlockId block = kInvalidBlockId;
    bool sentinel = false;

    /// Min-heap via greater-than; ties break deterministically by
    /// (shard, sentinel-first, block) so scans are reproducible.
    bool operator>(const Entry& other) const {
      if (key != other.key) return key > other.key;
      if (shard != other.shard) return shard > other.shard;
      if (sentinel != other.sentinel) return !sentinel;
      return block > other.block;
    }
  };

  void PushNextOf(std::size_t shard, BlockScan& scan) {
    if (!scan.HasNext()) return;
    double key = 0.0;
    const BlockId block = scan.Next(&key);
    heap_.push(
        Entry{.key = key, .shard = shard, .block = block, .sentinel = false});
  }

  const ShardedIndex& owner_;
  const std::vector<std::size_t>& block_offset_;
  const Point query_;
  const ScanOrder order_;
  std::vector<std::unique_ptr<BlockScan>> scans_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::size_t non_empty_ = 0;
  std::size_t opened_ = 0;
};

}  // namespace

std::size_t ShardPartition::Route(double x, double y) const {
  if (num_shards <= 1) return 0;
  if (policy == ShardPolicy::kBisection) {
    int node = 0;
    for (;;) {
      const SplitNode& n = nodes[static_cast<std::size_t>(node)];
      const double c = n.axis == 0 ? x : y;
      node = c < n.threshold ? n.lo : n.hi;
      if (node < 0) return static_cast<std::size_t>(~node);
    }
  }
  // Grid tiling: clamp into the frame, then flatten.
  std::size_t i = 0, j = 0;
  if (!frame.empty() && frame.width() > 0.0) {
    const double fx = (x - frame.min_x()) / frame.width();
    i = std::min(grid_cols - 1,
                 static_cast<std::size_t>(std::max(
                     0.0, std::floor(fx * static_cast<double>(grid_cols)))));
  }
  if (!frame.empty() && frame.height() > 0.0) {
    const double fy = (y - frame.min_y()) / frame.height();
    j = std::min(grid_rows - 1,
                 static_cast<std::size_t>(std::max(
                     0.0, std::floor(fy * static_cast<double>(grid_rows)))));
  }
  return std::min(j * grid_cols + i, num_shards - 1);
}

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    PointSet points, const IndexOptions& options) {
  if (options.shards < 2) {
    return Status::InvalidArgument(
        "ShardedIndex requires at least 2 shards; use BuildIndex for 1");
  }
  for (const Point& p : points) {
    if (Status s = ValidateInsertable(p); !s.ok()) return s;
  }

  auto partition = std::make_shared<ShardPartition>();
  partition->policy = options.shard_policy;
  partition->num_shards = options.shards;
  if (options.shard_policy == ShardPolicy::kBisection) {
    std::size_t next_shard = 0;
    BuildBisection(points, options.shards, &partition->nodes, &next_shard);
    KNNQ_CHECK_MSG(next_shard == options.shards,
                   "bisection produced a wrong leaf count");
  } else {
    partition->grid_rows = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::sqrt(
                          static_cast<double>(options.shards)))));
    partition->grid_cols =
        (options.shards + partition->grid_rows - 1) / partition->grid_rows;
    partition->frame = BoundingBox::Of(points);
  }

  std::vector<PointSet> groups(options.shards);
  for (const Point& p : points) {
    groups[partition->Route(p.x, p.y)].push_back(p);
  }
  points.clear();
  points.shrink_to_fit();

  IndexOptions child_options = options;
  child_options.shards = 1;
  std::vector<std::shared_ptr<SpatialIndex>> children;
  children.reserve(options.shards);
  for (PointSet& group : groups) {
    auto child = BuildIndex(std::move(group), child_options);
    if (!child.ok()) return child.status();
    children.push_back(std::move(child.value()));
  }
  return FromShards(std::move(partition), std::move(children));
}

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::FromShards(
    std::shared_ptr<const ShardPartition> partition,
    std::vector<std::shared_ptr<SpatialIndex>> children) {
  if (partition == nullptr || children.size() != partition->num_shards ||
      children.empty()) {
    return Status::InvalidArgument(
        "FromShards: children must match the partition's shard count");
  }
  for (const auto& child : children) {
    if (child == nullptr) {
      return Status::InvalidArgument("FromShards: null child shard");
    }
  }
  std::unique_ptr<ShardedIndex> index(new ShardedIndex());
  index->partition_ = std::move(partition);
  index->child_type_ = children.front()->type();
  index->children_ = std::move(children);
  index->RebuildMirror();
  return index;
}

void ShardedIndex::RebuildMirror() {
  std::size_t total_points = 0;
  std::size_t total_blocks = 0;
  for (const auto& child : children_) {
    total_points += child->num_points();
    total_blocks += child->num_blocks();
  }

  points_.clear();
  xs_.clear();
  ys_.clear();
  ids_.clear();
  blocks_.clear();
  block_shard_.clear();
  points_.reserve(total_points);
  xs_.reserve(total_points);
  ys_.reserve(total_points);
  ids_.reserve(total_points);
  blocks_.reserve(total_blocks);
  block_shard_.reserve(total_blocks);
  shard_scan_bounds_.assign(children_.size(), BoundingBox());
  block_offset_.assign(children_.size() + 1, 0);
  point_offset_.assign(children_.size() + 1, 0);
  bounds_ = BoundingBox();

  for (std::size_t s = 0; s < children_.size(); ++s) {
    const SpatialIndex& child = *children_[s];
    const std::size_t point_base = points_.size();
    block_offset_[s] = blocks_.size();
    point_offset_[s] = point_base;
    points_.insert(points_.end(), child.points().begin(),
                   child.points().end());
    xs_.insert(xs_.end(), child.xs().begin(), child.xs().end());
    ys_.insert(ys_.end(), child.ys().begin(), child.ys().end());
    ids_.insert(ids_.end(), child.ids().begin(), child.ids().end());
    for (const Block& b : child.blocks()) {
      blocks_.push_back(Block{.box = b.box,
                              .begin = b.begin + point_base,
                              .end = b.end + point_base});
      block_shard_.push_back(static_cast<std::uint32_t>(s));
      shard_scan_bounds_[s].Extend(b.box);
    }
    if (child.num_points() > 0) bounds_.Extend(child.bounds());
  }
  block_offset_[children_.size()] = blocks_.size();
  point_offset_[children_.size()] = points_.size();
}

BlockId ShardedIndex::Locate(const Point& p) const {
  const std::size_t s = RouteShard(p);
  const BlockId local = children_[s]->Locate(p);
  if (local == kInvalidBlockId) return kInvalidBlockId;
  return static_cast<BlockId>(block_offset_[s] + local);
}

std::unique_ptr<BlockScan> ShardedIndex::NewScan(const Point& query,
                                                 ScanOrder order) const {
  return std::make_unique<ShardedBlockScan>(*this, block_offset_, query,
                                            order);
}

std::string ShardedIndex::Describe() const {
  return "sharded x" + std::to_string(num_shards()) + " (" +
         ToString(partition_->policy) + ") over " + ToString(child_type_) +
         ", " + std::to_string(num_points()) + " points, " +
         std::to_string(num_blocks()) + " blocks";
}

std::unique_ptr<SpatialIndex> ShardedIndex::Clone() const {
  std::unique_ptr<ShardedIndex> clone(new ShardedIndex());
  clone->partition_ = partition_;
  clone->child_type_ = child_type_;
  clone->children_.reserve(children_.size());
  for (const auto& child : children_) {
    clone->children_.emplace_back(child->Clone());
  }
  clone->RebuildMirror();
  return clone;
}

int ShardedIndex::ShardOfPointId(PointId id) const {
  BlockId block = kInvalidBlockId;
  std::size_t pos = 0;
  if (!FindPoint(id, &block, &pos)) return -1;
  return static_cast<int>(block_shard_[block]);
}

Status ShardedIndex::Insert(const Point& p) {
  if (Status s = ValidateInsertable(p); !s.ok()) return s;
  if (Status s = children_[RouteShard(p)]->Insert(p); !s.ok()) return s;
  RebuildMirror();
  return Status::Ok();
}

Status ShardedIndex::Erase(PointId id) {
  const int s = ShardOfPointId(id);
  if (s < 0) {
    return Status::NotFound("no indexed point with id " + std::to_string(id));
  }
  if (Status st = children_[static_cast<std::size_t>(s)]->Erase(id);
      !st.ok()) {
    return st;
  }
  RebuildMirror();
  return Status::Ok();
}

Status ShardedIndex::BulkLoad(PointSet points) {
  for (const Point& p : points) {
    if (Status s = ValidateInsertable(p); !s.ok()) return s;
  }
  std::vector<PointSet> groups(children_.size());
  for (const Point& p : points) {
    groups[RouteShard(p)].push_back(p);
  }
  points.clear();
  points.shrink_to_fit();
  Status failed = Status::Ok();
  for (std::size_t s = 0; s < children_.size(); ++s) {
    if (Status st = children_[s]->BulkLoad(std::move(groups[s]));
        !st.ok() && failed.ok()) {
      failed = st;
    }
  }
  // Resync even on a child failure: the mirror must always reflect
  // whatever the children now hold.
  RebuildMirror();
  return failed;
}

}  // namespace knnq
