#include "src/index/index_factory.h"

#include <utility>

#include "src/index/grid_index.h"
#include "src/index/quadtree_index.h"
#include "src/index/rtree_index.h"
#include "src/index/sharded_index.h"

namespace knnq {

const char* ToString(IndexType type) {
  switch (type) {
    case IndexType::kGrid:
      return "grid";
    case IndexType::kQuadtree:
      return "quadtree";
    case IndexType::kRTree:
      return "rtree";
  }
  return "unknown";
}

const char* ToString(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kBisection:
      return "bisection";
    case ShardPolicy::kGrid:
      return "grid";
  }
  return "unknown";
}

Result<std::unique_ptr<SpatialIndex>> BuildIndex(
    PointSet points, const IndexOptions& options) {
  if (options.shards > 1) {
    auto built = ShardedIndex::Build(std::move(points), options);
    if (!built.ok()) return built.status();
    return std::unique_ptr<SpatialIndex>(std::move(built.value()));
  }
  switch (options.type) {
    case IndexType::kGrid: {
      GridOptions grid;
      grid.target_points_per_cell = options.block_capacity;
      grid.max_cells_per_axis = options.grid_max_cells_per_axis;
      auto built = GridIndex::Build(std::move(points), grid);
      if (!built.ok()) return built.status();
      return std::unique_ptr<SpatialIndex>(std::move(built.value()));
    }
    case IndexType::kQuadtree: {
      QuadtreeOptions quad;
      quad.leaf_capacity = options.block_capacity;
      quad.max_depth = options.quadtree_max_depth;
      auto built = QuadtreeIndex::Build(std::move(points), quad);
      if (!built.ok()) return built.status();
      return std::unique_ptr<SpatialIndex>(std::move(built.value()));
    }
    case IndexType::kRTree: {
      RTreeOptions rtree;
      rtree.leaf_capacity = options.block_capacity;
      rtree.fanout = options.rtree_fanout;
      auto built = RTreeIndex::Build(std::move(points), rtree);
      if (!built.ok()) return built.status();
      return std::unique_ptr<SpatialIndex>(std::move(built.value()));
    }
  }
  return Status::InvalidArgument("unknown index type");
}

}  // namespace knnq
