#include "src/index/tree_scan.h"

#include "src/common/check.h"

namespace knnq {

TreeScan::TreeScan(const std::vector<TreeNode>& nodes, std::size_t root,
                   const Point& query, ScanOrder order)
    : nodes_(nodes), query_(query), order_(order) {
  if (root < nodes_.size()) {
    heap_.push(Entry{KeyOf(nodes_[root]), static_cast<std::uint32_t>(root)});
  }
}

double TreeScan::KeyOf(const TreeNode& node) const {
  if (node.is_leaf() && order_ == ScanOrder::kMaxDist) {
    return node.box.MaxDist(query_);
  }
  // Internal nodes always use MINDIST: it lower-bounds both metrics of
  // every descendant leaf.
  return node.box.MinDist(query_);
}

void TreeScan::SettleTop() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    const TreeNode& node = nodes_[top.node];
    if (node.is_leaf()) return;
    heap_.pop();
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      const std::uint32_t child = node.first_child + c;
      heap_.push(Entry{KeyOf(nodes_[child]), child});
    }
  }
}

bool TreeScan::HasNext() {
  SettleTop();
  return !heap_.empty();
}

BlockId TreeScan::Next(double* key_dist) {
  SettleTop();
  KNNQ_CHECK_MSG(!heap_.empty(), "Next() past the end of a tree scan");
  const Entry top = heap_.top();
  heap_.pop();
  if (key_dist != nullptr) *key_dist = top.key;
  return nodes_[top.node].block;
}

}  // namespace knnq
