// Section 5: two kNN-selects on one relation:
//     sigma_{k1,f1}(E) INTERSECT sigma_{k2,f2}(E)
//
// Feeding either select's output into the other is wrong (Figures 14
// and 15); the correct QEP evaluates both independently and intersects
// (Figure 16). The optimized algorithm (Procedure 5) evaluates the
// smaller-k select first and then clips the larger-k select's locality
// with a search threshold derived from the first result: the
// intersection can only contain points of the first neighborhood, all
// of which lie within that threshold of the second focal point.

#ifndef KNNQ_SRC_CORE_TWO_SELECTS_H_
#define KNNQ_SRC_CORE_TWO_SELECTS_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/index/knn_searcher.h"
#include "src/index/locality.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// The query: two kNN-selects over one relation.
struct TwoSelectsQuery {
  const SpatialIndex* relation = nullptr;
  Point f1;
  std::size_t k1 = 0;
  Point f2;
  std::size_t k2 = 0;
};

/// Points satisfying both predicates, ascending by id.
using TwoSelectsResult = std::vector<Point>;

/// The conceptually correct QEP (Figure 16): both neighborhoods in
/// full, then the intersection. Fails on a null relation or zero k.
/// `exec` (optional, like `stats`) accumulates the uniform counters;
/// `shared_cache` (optional) memoizes getkNN probes across queries.
Result<TwoSelectsResult> TwoSelectsNaive(
    const TwoSelectsQuery& query, SearchStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

/// Procedure 5 (the "2-kNN-select" algorithm). Same output as the
/// naive QEP; the larger-k neighborhood is computed from a locality
/// clipped to the first result's search threshold.
Result<TwoSelectsResult> TwoSelectsOptimized(
    const TwoSelectsQuery& query, SearchStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_TWO_SELECTS_H_
