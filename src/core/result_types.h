// Result containers shared by every query evaluator.
//
// All evaluators canonicalize their outputs (sorted by ids) before
// returning, so two evaluators are equivalent iff their results compare
// equal with ==. Pairs and triplets carry full points, not just ids,
// because downstream operators (chained joins, candidate-block marking)
// need coordinates; comparisons use ids only.

#ifndef KNNQ_SRC_CORE_RESULT_TYPES_H_
#define KNNQ_SRC_CORE_RESULT_TYPES_H_

#include <string>
#include <vector>

#include "src/common/point.h"
#include "src/index/knn_searcher.h"

namespace knnq {

/// One output row of a kNN-join.
struct JoinPair {
  Point outer;
  Point inner;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.outer.id == b.outer.id && a.inner.id == b.inner.id;
  }
  friend bool operator<(const JoinPair& a, const JoinPair& b) {
    if (a.outer.id != b.outer.id) return a.outer.id < b.outer.id;
    return a.inner.id < b.inner.id;
  }
};

/// One output row of a two-join query over relations A, B, C.
struct Triplet {
  PointId a = 0;
  PointId b = 0;
  PointId c = 0;

  friend bool operator==(const Triplet& x, const Triplet& y) {
    return x.a == y.a && x.b == y.b && x.c == y.c;
  }
  friend bool operator<(const Triplet& x, const Triplet& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.c < y.c;
  }
};

using JoinResult = std::vector<JoinPair>;
using TripletResult = std::vector<Triplet>;

/// Sorts pairs into the canonical (outer id, inner id) order.
void Canonicalize(JoinResult& pairs);

/// Sorts triplets into the canonical (a, b, c) order.
void Canonicalize(TripletResult& triplets);

/// Set-intersection of two neighborhoods by point id, ascending by id.
/// This is the paper's `intersect(P, Q)` helper.
std::vector<Point> IntersectNeighborhoods(const Neighborhood& p,
                                          const Neighborhood& q);

/// Ids of a neighborhood's points, ascending.
std::vector<PointId> IdsOf(const Neighborhood& nbr);

/// Compact "n pairs / first few" rendering for logs and examples.
std::string Summarize(const JoinResult& pairs, std::size_t max_rows = 8);
std::string Summarize(const TripletResult& triplets,
                      std::size_t max_rows = 8);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_RESULT_TYPES_H_
