#include "src/core/multi_chained_joins.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const ChainQuery& query) {
  if (query.relations.size() < 2) {
    return Status::InvalidArgument("chain needs at least two relations");
  }
  if (query.ks.size() + 1 != query.relations.size()) {
    return Status::InvalidArgument(
        "chain needs exactly one k per hop (relations - 1)");
  }
  for (const SpatialIndex* relation : query.relations) {
    if (relation == nullptr) {
      return Status::InvalidArgument("chain relations must be non-null");
    }
  }
  for (const std::size_t k : query.ks) {
    if (k == 0) return Status::InvalidArgument("chain k values must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<ChainResult> ChainedPathJoin(const ChainQuery& query, bool cache,
                                    ChainStats* stats, ExecStats* exec,
                                    NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  ChainStats local;
  if (stats == nullptr) stats = &local;
  stats->probes_per_hop.assign(query.ks.size(), 0);

  const std::size_t hops = query.ks.size();
  std::vector<std::unique_ptr<CachingKnnSearcher>> searchers;
  for (std::size_t h = 0; h < hops; ++h) {
    searchers.push_back(std::make_unique<CachingKnnSearcher>(
        *query.relations[h + 1], shared_cache));
  }
  // One memo per hop: source point id -> neighborhood in the next
  // relation. Ids are unique within a relation, which is all the key
  // needs.
  std::vector<std::unordered_map<PointId, Neighborhood>> memo(hops);

  ChainResult rows;
  ChainRow row(query.relations.size());

  // Depth-first pipeline: extend the current row one hop at a time.
  // Recursion depth equals the chain length (queries are short chains,
  // not data-sized).
  const std::function<void(std::size_t, const Point&)> extend =
      [&](std::size_t hop, const Point& source) {
        if (hop == hops) {
          rows.push_back(row);
          return;
        }
        const Neighborhood* nbr = nullptr;
        Neighborhood uncached;
        if (cache) {
          const auto it = memo[hop].find(source.id);
          if (it != memo[hop].end()) {
            ++stats->cache_hits;
            nbr = &it->second;
          } else {
            ++stats->probes_per_hop[hop];
            nbr = &memo[hop]
                       .emplace(source.id, searchers[hop]->GetKnn(
                                               source, query.ks[hop]))
                       .first->second;
          }
        } else {
          ++stats->probes_per_hop[hop];
          uncached = searchers[hop]->GetKnn(source, query.ks[hop]);
          nbr = &uncached;
        }
        for (const Neighbor& n : *nbr) {
          row[hop + 1] = n.point.id;
          extend(hop + 1, n.point);
        }
      };

  {
    // One interleaved depth-first pass drives every hop searcher.
    PhaseSpan phase("chain_probe");
    for (const auto& searcher : searchers) {
      phase.AddSource(&searcher->stats());
    }
    for (const Point& p0 : query.relations[0]->points()) {
      row[0] = p0.id;
      extend(0, p0);
    }
    phase.Count("candidates_pruned", stats->cache_hits);
  }
  if (exec != nullptr) {
    for (const auto& searcher : searchers) {
      exec->AddSearch(searcher->stats());
    }
    exec->candidates_pruned += stats->cache_hits;
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<ChainResult> ChainedPathJoinNaive(const ChainQuery& query) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  const std::size_t hops = query.ks.size();

  // Materialize every pairwise join R_i JOIN R_{i+1} in full.
  // pairwise[h] maps a source id to the ids of its k nearest points in
  // the next relation, computed for EVERY point of R_h.
  std::vector<std::unordered_map<PointId, std::vector<PointId>>> pairwise(
      hops);
  for (std::size_t h = 0; h < hops; ++h) {
    KnnSearcher searcher(*query.relations[h + 1]);
    for (const Point& p : query.relations[h]->points()) {
      std::vector<PointId>& ids = pairwise[h][p.id];
      for (const Neighbor& n : searcher.GetKnn(p, query.ks[h])) {
        ids.push_back(n.point.id);
      }
    }
  }

  // Stitch rows left to right.
  ChainResult rows;
  for (const Point& p0 : query.relations[0]->points()) {
    ChainRow row(query.relations.size());
    row[0] = p0.id;
    const std::function<void(std::size_t, PointId)> stitch =
        [&](std::size_t hop, PointId source) {
          if (hop == hops) {
            rows.push_back(row);
            return;
          }
          const auto it = pairwise[hop].find(source);
          if (it == pairwise[hop].end()) return;
          for (const PointId next : it->second) {
            row[hop + 1] = next;
            stitch(hop + 1, next);
          }
        };
    stitch(0, p0.id);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace knnq
