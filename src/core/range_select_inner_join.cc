#include "src/core/range_select_inner_join.h"

#include <optional>
#include <vector>

#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const RangeSelectInnerJoinQuery& query) {
  if (query.outer == nullptr || query.inner == nullptr) {
    return Status::InvalidArgument("query relations must be non-null");
  }
  if (query.join_k == 0) {
    return Status::InvalidArgument("join_k must be > 0");
  }
  if (query.range.empty()) {
    return Status::InvalidArgument("selection rectangle must be non-empty");
  }
  return Status::Ok();
}

/// Emits (e1, i) for every neighbor i inside the rectangle.
void EmitInRange(const Point& e1, const Neighborhood& nbr_e1,
                 const BoundingBox& range, JoinResult& pairs) {
  for (const Neighbor& n : nbr_e1) {
    if (range.Contains(n.point)) pairs.push_back(JoinPair{e1, n.point});
  }
}

}  // namespace

Result<JoinResult> RangeSelectInnerJoinNaive(
    const RangeSelectInnerJoinQuery& query, SelectInnerJoinStats* stats,
    ExecStats* exec, NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  JoinResult pairs;
  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const Point& e1 : query.outer->points()) {
      const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
      ++stats->neighborhoods_computed;
      EmitInRange(e1, nbr_e1, query.range, pairs);
    }
  }
  if (exec != nullptr) exec->AddSearch(inner_searcher.stats());
  Canonicalize(pairs);
  return pairs;
}

Result<JoinResult> RangeSelectInnerJoinCounting(
    const RangeSelectInnerJoinQuery& query, SelectInnerJoinStats* stats,
    ExecStats* exec, NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  JoinResult pairs;
  std::size_t counting_blocks = 0;  // Blocks popped by the pruning scan.
  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const Point& e1 : query.outer->points()) {
      // Every rectangle point is at distance >= MINDIST(e1, rect);
      // points in blocks strictly closer displace all of them from e1's
      // neighborhood once more than join_k accumulate.
      const double threshold = query.range.MinDist(e1);
      std::size_t count = 0;
      if (threshold > 0.0) {  // e1 inside the rectangle never prunes.
        auto scan = query.inner->NewScan(e1, ScanOrder::kMaxDist);
        double max_dist = 0.0;
        while (count <= query.join_k && scan->HasNext()) {
          const BlockId id = scan->Next(&max_dist);
          ++counting_blocks;
          if (max_dist >= threshold) break;
          count += query.inner->block(id).count();
        }
      }
      if (count > query.join_k) {
        ++stats->pruned_points;
        continue;
      }
      const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
      ++stats->neighborhoods_computed;
      EmitInRange(e1, nbr_e1, query.range, pairs);
    }
    phase.Count("blocks_scanned", counting_blocks);
    phase.Count("candidates_pruned", stats->pruned_points);
  }
  if (exec != nullptr) {
    exec->AddSearch(inner_searcher.stats());
    exec->blocks_scanned += counting_blocks;
    exec->candidates_pruned += stats->pruned_points;
  }
  Canonicalize(pairs);
  return pairs;
}

namespace {

struct RangeMarkingContext {
  const RangeSelectInnerJoinQuery* query;
  CachingKnnSearcher* inner_searcher;
  SelectInnerJoinStats* stats;
};

/// Non-Contributing test: every point of the block has its join_k
/// neighborhood within r + 2y of the block center (r the center's
/// neighborhood radius, y the center-to-corner distance), while every
/// rectangle point is at least MINDIST(center, rect) away.
bool IsNonContributing(const Block& block, const RangeMarkingContext& ctx) {
  ++ctx.stats->blocks_preprocessed;
  const Point center = block.Center();
  const Neighborhood nbr =
      ctx.inner_searcher->GetKnn(center, ctx.query->join_k);
  if (nbr.size() < ctx.query->join_k) return false;
  const double r = nbr.back().dist;
  const double y = block.box.MaxDist(center);
  return r + 2.0 * y < ctx.query->range.MinDist(center);
}

}  // namespace

Result<JoinResult> RangeSelectInnerJoinBlockMarking(
    const RangeSelectInnerJoinQuery& query, PreprocessMode mode,
    SelectInnerJoinStats* stats, ExecStats* exec,
    NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  const RangeMarkingContext ctx{
      .query = &query,
      .inner_searcher = &inner_searcher,
      .stats = stats,
  };

  std::vector<BlockId> contributing;
  {
    PhaseSpan phase("preprocess", &inner_searcher.stats());
    if (mode == PreprocessMode::kContour) {
      // Same cycle rule as Procedure 3, ordered from the rectangle
      // center.
      const Point anchor = query.range.Center();
      std::optional<double> cycle_m;
      auto scan = query.outer->NewScan(anchor, ScanOrder::kMinDist);
      double min_dist = 0.0;
      while (scan->HasNext()) {
        const BlockId id = scan->Next(&min_dist);
        if (cycle_m.has_value() && min_dist >= *cycle_m) break;
        const Block& block = query.outer->block(id);
        if (IsNonContributing(block, ctx)) {
          if (!cycle_m.has_value()) cycle_m = block.box.MaxDist(anchor);
        } else {
          contributing.push_back(id);
          cycle_m.reset();
        }
      }
    } else {
      const std::size_t n = query.outer->num_blocks();
      for (BlockId id = 0; id < n; ++id) {
        if (!IsNonContributing(query.outer->block(id), ctx)) {
          contributing.push_back(id);
        }
      }
    }
    phase.Count("blocks_scanned", stats->blocks_preprocessed);
    phase.Count("candidates_pruned",
                query.outer->num_blocks() - contributing.size());
  }
  stats->contributing_blocks = contributing.size();

  JoinResult pairs;
  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const BlockId id : contributing) {
      for (const Point& e1 : query.outer->BlockPoints(id)) {
        const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
        ++stats->neighborhoods_computed;
        EmitInRange(e1, nbr_e1, query.range, pairs);
      }
    }
  }
  if (exec != nullptr) {
    exec->AddSearch(inner_searcher.stats());
    // One outer-block pop per preprocessing probe.
    exec->blocks_scanned += stats->blocks_preprocessed;
    exec->candidates_pruned +=
        query.outer->num_blocks() - contributing.size();
  }
  Canonicalize(pairs);
  return pairs;
}

}  // namespace knnq
