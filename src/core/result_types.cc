#include "src/core/result_types.h"

#include <algorithm>
#include <sstream>

namespace knnq {

void Canonicalize(JoinResult& pairs) {
  std::sort(pairs.begin(), pairs.end());
}

void Canonicalize(TripletResult& triplets) {
  std::sort(triplets.begin(), triplets.end());
}

std::vector<Point> IntersectNeighborhoods(const Neighborhood& p,
                                          const Neighborhood& q) {
  std::vector<Point> result;
  // Neighborhoods are k-sized; sort ids of the smaller side and probe.
  const Neighborhood& probe = p.size() <= q.size() ? p : q;
  const Neighborhood& other = p.size() <= q.size() ? q : p;
  for (const Neighbor& n : probe) {
    if (Contains(other, n.point.id)) result.push_back(n.point);
  }
  std::sort(result.begin(), result.end(),
            [](const Point& a, const Point& b) { return a.id < b.id; });
  return result;
}

std::vector<PointId> IdsOf(const Neighborhood& nbr) {
  std::vector<PointId> ids;
  ids.reserve(nbr.size());
  for (const Neighbor& n : nbr) ids.push_back(n.point.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string Summarize(const JoinResult& pairs, std::size_t max_rows) {
  std::ostringstream out;
  out << pairs.size() << " pairs";
  if (!pairs.empty()) out << ": ";
  for (std::size_t i = 0; i < pairs.size() && i < max_rows; ++i) {
    if (i > 0) out << ", ";
    out << "(" << pairs[i].outer.id << ", " << pairs[i].inner.id << ")";
  }
  if (pairs.size() > max_rows) out << ", ...";
  return out.str();
}

std::string Summarize(const TripletResult& triplets, std::size_t max_rows) {
  std::ostringstream out;
  out << triplets.size() << " triplets";
  if (!triplets.empty()) out << ": ";
  for (std::size_t i = 0; i < triplets.size() && i < max_rows; ++i) {
    if (i > 0) out << ", ";
    out << "(" << triplets[i].a << ", " << triplets[i].b << ", "
        << triplets[i].c << ")";
  }
  if (triplets.size() > max_rows) out << ", ...";
  return out.str();
}

}  // namespace knnq
