// kNN-join: E1 JOIN_kNN E2 - all pairs (e1, e2) where e2 is among the k
// closest points of E2 to e1. The paper's second base operation.
//
// The join is evaluated per outer tuple with the locality-based getkNN;
// there is both a materializing form and a streaming form (the
// conceptually correct QEPs pipe pairs through a filter without keeping
// the full cross-product in memory).

#ifndef KNNQ_SRC_CORE_KNN_JOIN_H_
#define KNNQ_SRC_CORE_KNN_JOIN_H_

#include <functional>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// Receives one join pair at a time; return value is ignored.
using JoinPairSink = std::function<void(const Point& outer,
                                        const Point& inner)>;

/// Evaluates the kNN-join and materializes all pairs in canonical order.
/// Fails when k == 0. `exec` (optional) accumulates scan counters;
/// `shared_cache` (optional) memoizes per-outer-point probes across
/// queries.
Result<JoinResult> KnnJoin(const PointSet& outer, const SpatialIndex& inner,
                           std::size_t k, ExecStats* exec = nullptr,
                           NeighborhoodCache* shared_cache = nullptr);

/// Streaming evaluation: emits each (e1, e2) pair to `sink` in outer
/// order. Fails when k == 0.
Status KnnJoinStreaming(const PointSet& outer, const SpatialIndex& inner,
                        std::size_t k, const JoinPairSink& sink,
                        ExecStats* exec = nullptr,
                        NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_KNN_JOIN_H_
