#include "src/core/select_outer_join.h"

#include "src/core/knn_join.h"
#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const SelectOuterJoinQuery& query) {
  if (query.outer == nullptr || query.inner == nullptr) {
    return Status::InvalidArgument("query relations must be non-null");
  }
  if (query.join_k == 0) {
    return Status::InvalidArgument("join_k must be > 0");
  }
  if (query.select_k == 0) {
    return Status::InvalidArgument("select_k must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<JoinResult> SelectOuterJoinPushed(const SelectOuterJoinQuery& query,
                                         ExecStats* exec,
                                         NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  CachingKnnSearcher outer_searcher(*query.outer, shared_cache);
  Neighborhood selected;
  {
    PhaseSpan phase("select", &outer_searcher.stats());
    selected = outer_searcher.GetKnn(query.focal, query.select_k);
    phase.Count("candidates_pruned",
                query.outer->num_points() - selected.size());
  }
  if (exec != nullptr) {
    exec->AddSearch(outer_searcher.stats());
    // The pushdown excludes every non-selected outer point from the
    // join - exactly the saving over the late-filter plan.
    exec->candidates_pruned += query.outer->num_points() - selected.size();
  }
  PointSet survivors;
  survivors.reserve(selected.size());
  for (const Neighbor& n : selected) survivors.push_back(n.point);
  return KnnJoin(survivors, *query.inner, query.join_k, exec,
                 shared_cache);
}

Result<JoinResult> SelectOuterJoinLate(const SelectOuterJoinQuery& query,
                                       ExecStats* exec,
                                       NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  CachingKnnSearcher outer_searcher(*query.outer, shared_cache);
  Neighborhood selected;
  {
    PhaseSpan phase("select", &outer_searcher.stats());
    selected = outer_searcher.GetKnn(query.focal, query.select_k);
  }
  if (exec != nullptr) exec->AddSearch(outer_searcher.stats());

  auto all_pairs = KnnJoin(query.outer->points(), *query.inner,
                           query.join_k, exec, shared_cache);
  if (!all_pairs.ok()) return all_pairs.status();
  JoinResult pairs;
  for (const JoinPair& pair : *all_pairs) {
    if (Contains(selected, pair.outer.id)) pairs.push_back(pair);
  }
  // KnnJoin already canonicalized; filtering preserves order.
  return pairs;
}

}  // namespace knnq
