// Footnote 1 of Section 3: "the same challenge exists if the selection
// is a spatial range (e.g., rectangle)". This module carries the
// paper's Counting and Block-Marking ideas over to a rectangular range
// selection on the INNER relation of a kNN-join:
//
//     (E1 JOIN_kNN E2) INTERSECT (E1 x Range_rect(E2))
// i.e. pairs (e1, e2) with e2 among the join_k nearest E2-points of e1
// AND e2 inside the rectangle.
//
// Pushing the range below the join's inner side is invalid for the
// same reason as the kNN-select: the join would see only in-rectangle
// points. The pruning thresholds adapt naturally:
//   * Counting: a focal neighbor at distance >= MINDIST(e1, rect)
//     replaces the "nearest focal neighbor" - more than join_k points
//     strictly closer prove no rectangle point joins e1.
//   * Block-Marking: a block is Non-Contributing when
//     r + 2y < MINDIST(center, rect), with r the center's join_k
//     neighborhood radius and y the center-to-corner distance; the
//     f_farthest term of the kNN-select disappears because the
//     rectangle is its own "neighborhood".

#ifndef KNNQ_SRC_CORE_RANGE_SELECT_INNER_JOIN_H_
#define KNNQ_SRC_CORE_RANGE_SELECT_INNER_JOIN_H_

#include "src/common/status.h"
#include "src/core/result_types.h"
#include "src/core/select_inner_join.h"
#include "src/index/spatial_index.h"

namespace knnq {

/// The query: E1 (outer) joined with E2 (inner), rectangle select on E2.
struct RangeSelectInnerJoinQuery {
  const SpatialIndex* outer = nullptr;
  const SpatialIndex* inner = nullptr;
  std::size_t join_k = 0;
  /// The selection rectangle over E2.
  BoundingBox range;
};

/// The conceptually correct QEP: full join, filter pairs by the
/// rectangle. Fails on null relations, join_k == 0, or an empty
/// rectangle. `exec` (optional, like `stats`) accumulates the uniform
/// counters; `shared_cache` (optional) memoizes getkNN probes across
/// queries.
Result<JoinResult> RangeSelectInnerJoinNaive(
    const RangeSelectInnerJoinQuery& query,
    SelectInnerJoinStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Counting-style evaluation (Procedure 1 adapted to a range).
Result<JoinResult> RangeSelectInnerJoinCounting(
    const RangeSelectInnerJoinQuery& query,
    SelectInnerJoinStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Block-Marking-style evaluation (Procedures 2 + 3 adapted to a
/// range); blocks are scanned in MINDIST order from the rectangle
/// center for the contour rule.
Result<JoinResult> RangeSelectInnerJoinBlockMarking(
    const RangeSelectInnerJoinQuery& query,
    PreprocessMode mode = PreprocessMode::kContour,
    SelectInnerJoinStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_RANGE_SELECT_INNER_JOIN_H_
