// Section 4.1: two UNCHAINED kNN-joins sharing their inner relation:
//     (A JOIN_kNN B) INTERSECT_B (C JOIN_kNN B)
// i.e. triplets (a, b, c) where b is among the k_ab nearest B-points of
// a AND among the k_cb nearest B-points of c.
//
// Neither join may run on the other's filtered output (Figures 8 and 9
// are both wrong); the correct QEP evaluates both joins independently
// and intersects on B (Figure 10). The optimized evaluation (Procedure
// 4) runs the first join, marks the B-blocks that received results as
// Candidate (all others Safe), and then skips every C-block whose
// points' neighborhoods can only reach Safe blocks.
//
// The paper assumes one grid shared by all relations, so its pseudocode
// locates B-points in C's index; knnq keeps per-relation indexes and
// marks Candidate blocks on B's own index (DESIGN.md note 4).

#ifndef KNNQ_SRC_CORE_UNCHAINED_JOINS_H_
#define KNNQ_SRC_CORE_UNCHAINED_JOINS_H_

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/data/distribution_stats.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// The query: joins (A JOIN B) and (C JOIN B), intersected on B.
struct UnchainedJoinsQuery {
  const SpatialIndex* a = nullptr;
  const SpatialIndex* b = nullptr;
  const SpatialIndex* c = nullptr;
  /// k of (A JOIN_kNN B).
  std::size_t k_ab = 0;
  /// k of (C JOIN_kNN B).
  std::size_t k_cb = 0;
};

/// Execution counters for tests, EXPLAIN and bench reporting.
struct UnchainedJoinsStats {
  /// B-blocks marked Candidate after the first join.
  std::size_t candidate_blocks = 0;
  /// C-blocks probed during preprocessing.
  std::size_t blocks_preprocessed = 0;
  /// C-blocks classified Contributing.
  std::size_t contributing_blocks = 0;
  /// C-points whose neighborhood was computed.
  std::size_t neighborhoods_computed = 0;
};

/// The conceptually correct QEP (Figure 10): both joins evaluated in
/// full, results intersected on B. Fails on null relations or zero k.
/// `exec` (optional) accumulates the uniform counters; `shared_cache`
/// (optional) memoizes getkNN probes across queries.
Result<TripletResult> UnchainedJoinsNaive(
    const UnchainedJoinsQuery& query, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Procedure 4: Candidate/Safe marking plus Contributing preprocessing
/// of C. Evaluates (A JOIN B) first; callers wanting the other order
/// swap a<->c and k_ab<->k_cb (see ChooseUnchainedOrder). Same output
/// as the naive QEP.
Result<TripletResult> UnchainedJoinsBlockMarking(
    const UnchainedJoinsQuery& query, UnchainedJoinsStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

/// Which outer relation should drive the first join.
enum class UnchainedOrder {
  kStartWithA,
  kStartWithC,
};

/// Section 4.1.2's heuristic: start with the relation of SMALLER
/// coverage (tighter clustering) so more of the other side's blocks
/// turn out Safe. Ties favor starting with A.
UnchainedOrder ChooseUnchainedOrder(const CoverageStats& coverage_a,
                                    const CoverageStats& coverage_c);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_UNCHAINED_JOINS_H_
