#include "src/core/knn_join.h"

#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"

namespace knnq {

Result<JoinResult> KnnJoin(const PointSet& outer, const SpatialIndex& inner,
                           std::size_t k, ExecStats* exec,
                           NeighborhoodCache* shared_cache) {
  JoinResult pairs;
  const Status status = KnnJoinStreaming(
      outer, inner, k,
      [&pairs](const Point& e1, const Point& e2) {
        pairs.push_back(JoinPair{e1, e2});
      },
      exec, shared_cache);
  if (!status.ok()) return status;
  Canonicalize(pairs);
  return pairs;
}

Status KnnJoinStreaming(const PointSet& outer, const SpatialIndex& inner,
                        std::size_t k, const JoinPairSink& sink,
                        ExecStats* exec, NeighborhoodCache* shared_cache) {
  if (k == 0) {
    return Status::InvalidArgument("kNN-join requires k > 0");
  }
  CachingKnnSearcher searcher(inner, shared_cache);
  {
    PhaseSpan phase("join_probe", &searcher.stats());
    for (const Point& e1 : outer) {
      const Neighborhood nbr = searcher.GetKnn(e1, k);
      for (const Neighbor& n : nbr) {
        sink(e1, n.point);
      }
    }
  }
  if (exec != nullptr) exec->AddSearch(searcher.stats());
  return Status::Ok();
}

}  // namespace knnq
