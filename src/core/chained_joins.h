// Section 4.2: two CHAINED kNN-joins A -> B -> C:
//     triplets (a, b, c) with b among the k_ab nearest B-points of a
//     and c among the k_bc nearest C-points of b.
//
// All three QEPs of Figure 13 are correct (the first join acts as a
// select on the OUTER side of the second, which is a valid pushdown);
// they differ only in cost:
//   * QEP1 "right-deep":       A JOIN (B JOIN C), materializing B JOIN C.
//   * QEP2 "join intersection": (A JOIN B) INTERSECT_B (B JOIN C).
//   * QEP3 "nested join":       for each result b of (A JOIN B), join b
//                               with C - only reachable b's are joined,
//                               optionally memoizing per-b neighborhoods
//                               in a hash table (Section 4.2.1).

#ifndef KNNQ_SRC_CORE_CHAINED_JOINS_H_
#define KNNQ_SRC_CORE_CHAINED_JOINS_H_

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// The query: chained joins (A JOIN B) then (B JOIN C).
struct ChainedJoinsQuery {
  const SpatialIndex* a = nullptr;
  const SpatialIndex* b = nullptr;
  const SpatialIndex* c = nullptr;
  /// k of (A JOIN_kNN B).
  std::size_t k_ab = 0;
  /// k of (B JOIN_kNN C).
  std::size_t k_bc = 0;
};

/// Execution counters for tests, EXPLAIN and bench reporting.
struct ChainedJoinsStats {
  /// B-neighborhoods over C computed (the second join's real work).
  std::size_t b_neighborhoods_computed = 0;
  /// Nested-join cache hits (QEP3 with caching only).
  std::size_t cache_hits = 0;
};

/// QEP1: materialize (B JOIN C) in full, then join A against it.
/// `exec` (optional, like `stats`) accumulates the uniform counters;
/// `shared_cache` (optional) memoizes getkNN probes across queries
/// (orthogonal to the per-query b-memo of QEP3).
Result<TripletResult> ChainedJoinsRightDeep(
    const ChainedJoinsQuery& query, ChainedJoinsStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

/// QEP2: evaluate both joins independently, intersect on B.
Result<TripletResult> ChainedJoinsJoinIntersection(
    const ChainedJoinsQuery& query, ChainedJoinsStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

/// QEP3: nested join; `cache_bc` memoizes b-neighborhoods so a b
/// reachable from several a's is joined once (Section 4.2.1).
Result<TripletResult> ChainedJoinsNested(
    const ChainedJoinsQuery& query, bool cache_bc = true,
    ChainedJoinsStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_CHAINED_JOINS_H_
