#include "src/core/unchained_joins.h"

#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/core/knn_join.h"
#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const UnchainedJoinsQuery& query) {
  if (query.a == nullptr || query.b == nullptr || query.c == nullptr) {
    return Status::InvalidArgument("query relations must be non-null");
  }
  if (query.k_ab == 0 || query.k_cb == 0) {
    return Status::InvalidArgument("join k values must be > 0");
  }
  return Status::Ok();
}

/// Groups join pairs by the id of their B-side point.
std::unordered_map<PointId, std::vector<PointId>> GroupByInner(
    const JoinResult& pairs) {
  std::unordered_map<PointId, std::vector<PointId>> by_b;
  for (const JoinPair& pair : pairs) {
    by_b[pair.inner.id].push_back(pair.outer.id);
  }
  return by_b;
}

}  // namespace

Result<TripletResult> UnchainedJoinsNaive(const UnchainedJoinsQuery& query,
                                          ExecStats* exec,
                                          NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;

  // Figure 10: both joins in full, then the intersection on B.
  auto ab =
      KnnJoin(query.a->points(), *query.b, query.k_ab, exec, shared_cache);
  if (!ab.ok()) return ab.status();
  auto cb =
      KnnJoin(query.c->points(), *query.b, query.k_cb, exec, shared_cache);
  if (!cb.ok()) return cb.status();

  const auto a_by_b = GroupByInner(*ab);
  TripletResult triplets;
  PhaseSpan phase("intersect_b");
  for (const JoinPair& pair : *cb) {
    const auto it = a_by_b.find(pair.inner.id);
    if (it == a_by_b.end()) continue;
    for (const PointId a_id : it->second) {
      triplets.push_back(
          Triplet{.a = a_id, .b = pair.inner.id, .c = pair.outer.id});
    }
  }
  Canonicalize(triplets);
  return triplets;
}

Result<TripletResult> UnchainedJoinsBlockMarking(
    const UnchainedJoinsQuery& query, UnchainedJoinsStats* stats,
    ExecStats* exec, NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  UnchainedJoinsStats local;
  if (stats == nullptr) stats = &local;

  // Step 1 (Procedure 4 lines 1-3): the first join, in full.
  auto ab =
      KnnJoin(query.a->points(), *query.b, query.k_ab, exec, shared_cache);
  if (!ab.ok()) return ab.status();
  const auto a_by_b = GroupByInner(*ab);

  // Step 2 (lines 4-8): B-blocks holding join results are Candidate;
  // all others are Safe.
  std::vector<bool> candidate(query.b->num_blocks(), false);
  for (const JoinPair& pair : *ab) {
    const BlockId bid = query.b->Locate(pair.inner);
    KNNQ_CHECK_MSG(bid != kInvalidBlockId,
                   "join produced a point missing from B's index");
    if (!candidate[bid]) {
      candidate[bid] = true;
      ++stats->candidate_blocks;
    }
  }

  // Step 3 (lines 9-22): preprocess C. A block is Contributing iff some
  // Candidate B-block lies fully or partially within the search
  // threshold disk around the block's center.
  CachingKnnSearcher b_searcher(*query.b, shared_cache);
  std::vector<BlockId> contributing;
  std::size_t marking_blocks = 0;  // B-blocks popped by the direct scans.
  const auto num_c_blocks = static_cast<BlockId>(query.c->num_blocks());
  {
    PhaseSpan phase("preprocess", &b_searcher.stats());
    for (BlockId id = 0; id < num_c_blocks; ++id) {
      ++stats->blocks_preprocessed;
      const Block& block = query.c->block(id);
      const Point center = block.Center();
      const Neighborhood nbr = b_searcher.GetKnn(center, query.k_cb);
      bool is_contributing = false;
      if (nbr.size() < query.k_cb) {
        // B smaller than k_cb: neighborhood radii are unbounded.
        is_contributing = true;
      } else {
        const double threshold = nbr.back().dist + block.Diagonal();
        auto scan = query.b->NewScan(center, ScanOrder::kMinDist);
        double min_dist = 0.0;
        while (scan->HasNext()) {
          const BlockId b_block = scan->Next(&min_dist);
          ++marking_blocks;
          if (min_dist > threshold) break;
          if (candidate[b_block]) {
            is_contributing = true;
            break;
          }
        }
      }
      if (is_contributing) contributing.push_back(id);
    }
    phase.Count("blocks_scanned", marking_blocks);
    phase.Count("candidates_pruned",
                query.c->num_blocks() - contributing.size());
  }
  stats->contributing_blocks = contributing.size();

  // Step 4 (lines 23-34): the second join, restricted to Contributing
  // blocks, intersected on B. The per-pair scan of the pseudocode is
  // replaced by a hash probe with identical semantics.
  TripletResult triplets;
  {
    PhaseSpan phase("join_probe", &b_searcher.stats());
    for (const BlockId id : contributing) {
      for (const Point& c_point : query.c->BlockPoints(id)) {
        const Neighborhood nbr_c = b_searcher.GetKnn(c_point, query.k_cb);
        ++stats->neighborhoods_computed;
        for (const Neighbor& bn : nbr_c) {
          const auto it = a_by_b.find(bn.point.id);
          if (it == a_by_b.end()) continue;
          for (const PointId a_id : it->second) {
            triplets.push_back(
                Triplet{.a = a_id, .b = bn.point.id, .c = c_point.id});
          }
        }
      }
    }
  }
  if (exec != nullptr) {
    exec->AddSearch(b_searcher.stats());
    exec->blocks_scanned += marking_blocks;
    exec->candidates_pruned +=
        query.c->num_blocks() - stats->contributing_blocks;
  }
  Canonicalize(triplets);
  return triplets;
}

UnchainedOrder ChooseUnchainedOrder(const CoverageStats& coverage_a,
                                    const CoverageStats& coverage_c) {
  return coverage_a.coverage() <= coverage_c.coverage()
             ? UnchainedOrder::kStartWithA
             : UnchainedOrder::kStartWithC;
}

}  // namespace knnq
