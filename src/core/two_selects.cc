#include "src/core/two_selects.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/core/phase_trace.h"
#include "src/core/result_types.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/distance_kernel.h"

namespace knnq {

namespace {

Status ValidateQuery(const TwoSelectsQuery& query) {
  if (query.relation == nullptr) {
    return Status::InvalidArgument("query relation must be non-null");
  }
  if (query.k1 == 0 || query.k2 == 0) {
    return Status::InvalidArgument("select k values must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<TwoSelectsResult> TwoSelectsNaive(const TwoSelectsQuery& query,
                                         SearchStats* stats,
                                         ExecStats* exec,
                                         NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  CachingKnnSearcher searcher(*query.relation, shared_cache);
  Neighborhood nbr1, nbr2;
  {
    PhaseSpan phase("select_s1", &searcher.stats());
    nbr1 = searcher.GetKnn(query.f1, query.k1);
  }
  {
    PhaseSpan phase("select_s2", &searcher.stats());
    nbr2 = searcher.GetKnn(query.f2, query.k2);
  }
  if (stats != nullptr) *stats = searcher.stats();
  if (exec != nullptr) exec->AddSearch(searcher.stats());
  PhaseSpan phase("intersect");
  return IntersectNeighborhoods(nbr1, nbr2);
}

Result<TwoSelectsResult> TwoSelectsOptimized(
    const TwoSelectsQuery& query, SearchStats* stats, ExecStats* exec,
    NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;

  // Procedure 5 lines 1-4: evaluate the smaller-k predicate first; its
  // result is what bounds the other side's locality.
  Point f1 = query.f1;
  Point f2 = query.f2;
  std::size_t k1 = query.k1;
  std::size_t k2 = query.k2;
  if (k1 > k2) {
    std::swap(f1, f2);
    std::swap(k1, k2);
  }

  CachingKnnSearcher searcher(*query.relation, shared_cache);
  Neighborhood nbr1;
  {
    PhaseSpan phase("select_s1", &searcher.stats());
    nbr1 = searcher.GetKnn(f1, k1);
  }
  if (nbr1.empty()) {
    if (stats != nullptr) *stats = searcher.stats();
    if (exec != nullptr) exec->AddSearch(searcher.stats());
    return TwoSelectsResult{};  // Empty relation: empty intersection.
  }

  // Line 6: the search threshold is the distance between f2 and the
  // farthest member of nbr1 *from f2* - every candidate for the final
  // intersection lies within it. Batched through the distance kernel;
  // sqrt(max sq) == max(sqrt) exactly (sqrt is monotone and correctly
  // rounded), so the threshold matches the per-neighbor computation
  // bit-for-bit.
  std::vector<double> nx, ny;
  nx.reserve(nbr1.size());
  ny.reserve(nbr1.size());
  for (const Neighbor& n : nbr1) {
    nx.push_back(n.point.x);
    ny.push_back(n.point.y);
  }
  const double threshold = std::sqrt(
      MaxSquaredDistance(nx.data(), ny.data(), nx.size(), f2.x, f2.y));

  // Lines 7-32: neighborhood of f2 from the clipped locality.
  Neighborhood nbr2;
  {
    PhaseSpan phase("select_s2_restricted", &searcher.stats());
    nbr2 = searcher.GetKnnRestricted(f2, k2, threshold);
  }
  if (stats != nullptr) *stats = searcher.stats();
  if (exec != nullptr) exec->AddSearch(searcher.stats());
  PhaseSpan phase("intersect");
  return IntersectNeighborhoods(nbr1, nbr2);
}

}  // namespace knnq
