#include "src/core/select_inner_join.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "src/common/check.h"
#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/distance_kernel.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const SelectInnerJoinQuery& query) {
  if (query.outer == nullptr || query.inner == nullptr) {
    return Status::InvalidArgument("query relations must be non-null");
  }
  if (query.join_k == 0) {
    return Status::InvalidArgument("join_k must be > 0");
  }
  if (query.select_k == 0) {
    return Status::InvalidArgument("select_k must be > 0");
  }
  return Status::Ok();
}

/// The focal neighborhood's coordinates as columns, so the per-outer-
/// tuple threshold below runs through the batched distance kernel
/// (the neighborhood is fixed across the whole outer scan).
struct NeighborhoodColumns {
  std::vector<double> x, y;

  explicit NeighborhoodColumns(const Neighborhood& nbr) {
    x.reserve(nbr.size());
    y.reserve(nbr.size());
    for (const Neighbor& n : nbr) {
      x.push_back(n.point.x);
      y.push_back(n.point.y);
    }
  }
};

/// Distance from `p` to the nearest member of the columns (the Counting
/// algorithm's per-tuple search threshold).
double NearestMemberDistance(const Point& p,
                             const NeighborhoodColumns& cols) {
  return std::sqrt(
      MinSquaredDistance(cols.x.data(), cols.y.data(), cols.x.size(), p.x,
                         p.y));
}

/// Emits (e1, i) for every i in the intersection of e1's neighborhood
/// with the focal neighborhood.
void EmitIntersection(const Point& e1, const Neighborhood& nbr_e1,
                      const Neighborhood& nbr_f, JoinResult& pairs) {
  for (const Neighbor& n : nbr_e1) {
    if (Contains(nbr_f, n.point.id)) {
      pairs.push_back(JoinPair{e1, n.point});
    }
  }
}

}  // namespace

Result<JoinResult> SelectInnerJoinNaive(const SelectInnerJoinQuery& query,
                                        SelectInnerJoinStats* stats,
                                        ExecStats* exec,
                                        NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  Neighborhood nbr_f;
  {
    PhaseSpan phase("select", &inner_searcher.stats());
    nbr_f = inner_searcher.GetKnn(query.focal, query.select_k);
  }

  // The conceptually correct QEP: the full join runs first; the select
  // filter applies to its output. The filter is pipelined per pair, but
  // every outer neighborhood is computed - no pruning.
  JoinResult pairs;
  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const Point& e1 : query.outer->points()) {
      const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
      ++stats->neighborhoods_computed;
      EmitIntersection(e1, nbr_e1, nbr_f, pairs);
    }
  }
  if (exec != nullptr) exec->AddSearch(inner_searcher.stats());
  Canonicalize(pairs);
  return pairs;
}

Result<JoinResult> SelectInnerJoinCounting(const SelectInnerJoinQuery& query,
                                           SelectInnerJoinStats* stats,
                                           ExecStats* exec,
                                           NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  Neighborhood nbr_f;
  {
    PhaseSpan phase("select", &inner_searcher.stats());
    nbr_f = inner_searcher.GetKnn(query.focal, query.select_k);
  }
  JoinResult pairs;
  if (nbr_f.empty()) {
    // E2 empty: both predicates empty. Flush the select's scan work.
    if (exec != nullptr) exec->AddSearch(inner_searcher.stats());
    return pairs;
  }

  std::size_t counting_blocks = 0;  // Blocks popped by the pruning scan.
  const NeighborhoodColumns nbr_f_cols(nbr_f);
  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const Point& e1 : query.outer->points()) {
      // Procedure 1: points in inner blocks certainly closer to e1 than
      // the nearest focal neighbor displace every focal neighbor from
      // e1's k-neighborhood once there are more than join_k of them.
      const double threshold = NearestMemberDistance(e1, nbr_f_cols);
      std::size_t count = 0;
      auto scan = query.inner->NewScan(e1, ScanOrder::kMaxDist);
      double max_dist = 0.0;
      while (count <= query.join_k && scan->HasNext()) {
        const BlockId id = scan->Next(&max_dist);
        ++counting_blocks;
        // Strict comparison: only blocks whose every point is strictly
        // within the threshold may count (DESIGN.md note 1).
        if (max_dist >= threshold) break;
        count += query.inner->block(id).count();
      }
      if (count > query.join_k) {
        ++stats->pruned_points;
        continue;
      }
      const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
      ++stats->neighborhoods_computed;
      EmitIntersection(e1, nbr_e1, nbr_f, pairs);
    }
    phase.Count("blocks_scanned", counting_blocks);
    phase.Count("candidates_pruned", stats->pruned_points);
  }
  if (exec != nullptr) {
    exec->AddSearch(inner_searcher.stats());
    exec->blocks_scanned += counting_blocks;
    exec->candidates_pruned += stats->pruned_points;
  }
  Canonicalize(pairs);
  return pairs;
}

namespace {

/// Shared state of the Block-Marking preprocessing checks.
struct BlockMarkingContext {
  const SelectInnerJoinQuery* query;
  CachingKnnSearcher* inner_searcher;
  /// Distance from the focal point to the farthest focal neighbor.
  double f_farthest;
  SelectInnerJoinStats* stats;
  ProbePoint probe;
};

/// The Non-Contributing test of Section 3.2.1, generalized to an
/// arbitrary probe location c per the Theorem 1 analysis: with r the
/// k-neighborhood radius of c over the inner relation, y = the distance
/// from c to the block's farthest corner and f_c = distance from c to
/// the focal point, no point in the block can reach the focal
/// neighborhood when (r + 2y + f_farthest) < f_c. For c = center,
/// 2y equals the block diagonal - exactly the paper's check.
bool IsNonContributing(const Block& block, const BlockMarkingContext& ctx) {
  ++ctx.stats->blocks_preprocessed;
  const Point probe =
      ctx.probe == ProbePoint::kCenter
          ? block.Center()
          : Point{.id = -1, .x = block.box.min_x(), .y = block.box.min_y()};
  const Neighborhood nbr =
      ctx.inner_searcher->GetKnn(probe, ctx.query->join_k);
  if (nbr.size() < ctx.query->join_k) {
    // The inner relation is smaller than join_k: neighborhood radii are
    // unbounded and no block can be excluded.
    return false;
  }
  const double r = nbr.back().dist;
  const double y = block.box.MaxDist(probe);
  const double f_c = Distance(probe, ctx.query->focal);
  return r + 2.0 * y + ctx.f_farthest < f_c;
}

/// Procedure 3: scan outer blocks in MINDIST order from the focal
/// point; once an uninterrupted cycle of Non-Contributing blocks wraps
/// past the MAXDIST of its first member, every remaining block is
/// Non-Contributing by the contour argument (Figure 6).
std::vector<BlockId> PreprocessContour(const BlockMarkingContext& ctx) {
  std::vector<BlockId> contributing;
  // MAXDIST (from the focal point) of the first Non-Contributing block
  // of the currently open cycle; disengaged while a cycle is not open.
  // The paper's pseudocode models this with M = 0, which taken literally
  // stops on the first block (MINDIST 0 >= 0); see DESIGN.md note 2.
  std::optional<double> cycle_m;
  auto scan = ctx.query->outer->NewScan(ctx.query->focal,
                                        ScanOrder::kMinDist);
  double min_dist = 0.0;
  while (scan->HasNext()) {
    const BlockId id = scan->Next(&min_dist);
    if (cycle_m.has_value() && min_dist >= *cycle_m) {
      break;  // Closed contour: the rest is Non-Contributing.
    }
    const Block& block = ctx.query->outer->block(id);
    if (IsNonContributing(block, ctx)) {
      if (!cycle_m.has_value()) {
        cycle_m = block.box.MaxDist(ctx.query->focal);
      }
    } else {
      contributing.push_back(id);
      cycle_m.reset();  // The cycle broke; start over.
    }
  }
  return contributing;
}

/// Exhaustive preprocessing: probe every outer block.
std::vector<BlockId> PreprocessExhaustive(const BlockMarkingContext& ctx) {
  std::vector<BlockId> contributing;
  const std::size_t n = ctx.query->outer->num_blocks();
  for (BlockId id = 0; id < n; ++id) {
    if (!IsNonContributing(ctx.query->outer->block(id), ctx)) {
      contributing.push_back(id);
    }
  }
  return contributing;
}

}  // namespace

Result<JoinResult> SelectInnerJoinBlockMarking(
    const SelectInnerJoinQuery& query, PreprocessMode mode,
    SelectInnerJoinStats* stats, ProbePoint probe, ExecStats* exec,
    NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  SelectInnerJoinStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher inner_searcher(*query.inner, shared_cache);
  Neighborhood nbr_f;
  {
    PhaseSpan phase("select", &inner_searcher.stats());
    nbr_f = inner_searcher.GetKnn(query.focal, query.select_k);
  }
  JoinResult pairs;
  if (nbr_f.empty()) {
    // Empty inner relation: flush the select's scan work.
    if (exec != nullptr) exec->AddSearch(inner_searcher.stats());
    return pairs;
  }

  const BlockMarkingContext ctx{
      .query = &query,
      .inner_searcher = &inner_searcher,
      .f_farthest = nbr_f.back().dist,
      .stats = stats,
      .probe = probe,
  };
  std::vector<BlockId> contributing;
  {
    PhaseSpan phase("preprocess", &inner_searcher.stats());
    contributing = (mode == PreprocessMode::kContour)
                       ? PreprocessContour(ctx)
                       : PreprocessExhaustive(ctx);
    phase.Count("blocks_scanned", stats->blocks_preprocessed);
    phase.Count("candidates_pruned",
                query.outer->num_blocks() - contributing.size());
  }
  stats->contributing_blocks = contributing.size();

  {
    PhaseSpan phase("join_probe", &inner_searcher.stats());
    for (const BlockId id : contributing) {
      for (const Point& e1 : query.outer->BlockPoints(id)) {
        const Neighborhood nbr_e1 = inner_searcher.GetKnn(e1, query.join_k);
        ++stats->neighborhoods_computed;
        EmitIntersection(e1, nbr_e1, nbr_f, pairs);
      }
    }
  }
  if (exec != nullptr) {
    exec->AddSearch(inner_searcher.stats());
    // The preprocessing pass pops one outer block per probe; count that
    // scan traffic like the Counting evaluators count theirs.
    exec->blocks_scanned += stats->blocks_preprocessed;
    // Every outer block not classified Contributing was excluded
    // wholesale (probed Non-Contributing or skipped by the contour).
    exec->candidates_pruned +=
        query.outer->num_blocks() - contributing.size();
  }
  Canonicalize(pairs);
  return pairs;
}

}  // namespace knnq
