#include "src/core/knn_select.h"

namespace knnq {

Result<Neighborhood> KnnSelect(const SpatialIndex& relation,
                               const Point& focal, std::size_t k,
                               ExecStats* exec) {
  if (k == 0) {
    return Status::InvalidArgument("kNN-select requires k > 0");
  }
  KnnSearcher searcher(relation);
  Neighborhood nbr = searcher.GetKnn(focal, k);
  if (exec != nullptr) exec->AddSearch(searcher.stats());
  return nbr;
}

}  // namespace knnq
