#include "src/core/knn_select.h"

#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"

namespace knnq {

Result<Neighborhood> KnnSelect(const SpatialIndex& relation,
                               const Point& focal, std::size_t k,
                               ExecStats* exec,
                               NeighborhoodCache* shared_cache) {
  if (k == 0) {
    return Status::InvalidArgument("kNN-select requires k > 0");
  }
  CachingKnnSearcher searcher(relation, shared_cache);
  Neighborhood nbr;
  {
    PhaseSpan phase("select", &searcher.stats());
    nbr = searcher.GetKnn(focal, k);
  }
  if (exec != nullptr) exec->AddSearch(searcher.stats());
  return nbr;
}

}  // namespace knnq
