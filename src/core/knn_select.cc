#include "src/core/knn_select.h"

namespace knnq {

Result<Neighborhood> KnnSelect(const SpatialIndex& relation,
                               const Point& focal, std::size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("kNN-select requires k > 0");
  }
  KnnSearcher searcher(relation);
  return searcher.GetKnn(focal, k);
}

}  // namespace knnq
