// kNN-select: sigma_{k,f}(E) - the k points of E closest to focal f.
// One of the paper's two base operations (Section 1).

#ifndef KNNQ_SRC_CORE_KNN_SELECT_H_
#define KNNQ_SRC_CORE_KNN_SELECT_H_

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/index/knn_searcher.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// Evaluates sigma_{k,f}(relation): the neighborhood of `focal`.
/// Returns fewer than k points only when the relation is smaller than k.
/// Fails when k == 0 (an empty select is a query-authoring error).
/// `exec` (optional) accumulates scan counters; `shared_cache`
/// (optional) memoizes the probe across queries.
Result<Neighborhood> KnnSelect(const SpatialIndex& relation,
                               const Point& focal, std::size_t k,
                               ExecStats* exec = nullptr,
                               NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_KNN_SELECT_H_
