// PhaseSpan: the evaluator-side tracing hook behind EXPLAIN ANALYZE.
//
// A PhaseSpan is a ScopedSpan that snapshots up to two SearchStats
// sources (the cumulative counters of the KnnSearchers the phase
// drives) when it opens and attaches their deltas when it closes,
// under the SAME names ExecStats::AddSearch folds them into
// (localities_computed -> neighborhoods_computed, points_scanned ->
// points_compared). Evaluators wrap their major stages (neighborhood
// builds, probe loops, intersection passes) in PhaseSpans that TILE
// each searcher's use: every GetKnn call happens inside exactly one
// phase observing that searcher, and phases never nest. Counters an
// evaluator adds to ExecStats directly (candidates_pruned, counting
// filters' blocks_scanned) are forwarded through Count() from exactly
// one phase. That discipline is what makes the span tree's counters
// sum exactly to the query's ExecStats totals - the property obs_test
// asserts for every paper query shape.
//
// Gauges (arena_bytes; ExecStats' wall_seconds and cache_bytes) are
// excluded: they do not telescope. When tracing is disabled, a
// PhaseSpan costs one thread-local load and never reads the stats.

#ifndef KNNQ_SRC_CORE_PHASE_TRACE_H_
#define KNNQ_SRC_CORE_PHASE_TRACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/index/locality.h"
#include "src/obs/trace.h"

namespace knnq {

class PhaseSpan {
 public:
  /// Either source may be null (a phase that only forwards manual
  /// counts, or whose searcher is constructed conditionally).
  explicit PhaseSpan(const char* name, const SearchStats* a = nullptr,
                     const SearchStats* b = nullptr)
      : span_(name), a_(a), b_(b) {
    if (!span_.active()) return;
    if (a_ != nullptr) before_a_ = *a_;
    if (b_ != nullptr) before_b_ = *b_;
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

  /// Forwards a counter an evaluator adds to ExecStats directly; the
  /// name must be the ExecStats field name.
  void Count(const char* name, std::uint64_t value) {
    span_.Count(name, value);
  }

  /// Registers an additional source (evaluators that drive a runtime-
  /// sized set of searchers, e.g. chained path joins). Snapshots the
  /// source now; call before the phase's first search.
  void AddSource(const SearchStats* s) {
    if (s == nullptr || !span_.active()) return;
    extra_.emplace_back(s, *s);
  }

  ~PhaseSpan() {
    if (!span_.active()) return;
    if (a_ != nullptr) AttachDelta(*a_, before_a_);
    if (b_ != nullptr) AttachDelta(*b_, before_b_);
    for (const auto& [source, before] : extra_) {
      AttachDelta(*source, before);
    }
  }

 private:
  void AttachDelta(const SearchStats& now, const SearchStats& before) {
    span_.Count("neighborhoods_computed",
                now.localities_computed - before.localities_computed);
    span_.Count("blocks_scanned", now.blocks_scanned - before.blocks_scanned);
    span_.Count("points_compared", now.points_scanned - before.points_scanned);
    span_.Count("blocks_skipped", now.blocks_skipped - before.blocks_skipped);
    span_.Count("cache_hits", now.cache_hits - before.cache_hits);
    span_.Count("cache_misses", now.cache_misses - before.cache_misses);
    span_.Count("shards_pruned", now.shards_pruned - before.shards_pruned);
  }

  obs::ScopedSpan span_;
  const SearchStats* a_;
  const SearchStats* b_;
  SearchStats before_a_;
  SearchStats before_b_;
  std::vector<std::pair<const SearchStats*, SearchStats>> extra_;
};

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_PHASE_TRACE_H_
