#include "src/core/exec_stats.h"

#include <cstdio>

namespace knnq {

std::string ExecStats::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "blocks=%zu points=%zu neighborhoods=%zu pruned=%zu "
                "wall=%.3fms",
                blocks_scanned, points_compared, neighborhoods_computed,
                candidates_pruned, wall_seconds * 1e3);
  return buffer;
}

}  // namespace knnq
