#include "src/core/exec_stats.h"

#include <cstdio>

#include "src/common/text_parse.h"

namespace knnq {

std::string ExecStats::ToString() const {
  char buffer[320];
  int written = std::snprintf(
      buffer, sizeof(buffer),
      "blocks=%zu skipped=%zu points=%zu neighborhoods=%zu pruned=%zu "
      "shards_pruned=%zu arena_bytes=%zu wall=%.3fms",
      blocks_scanned, blocks_skipped, points_compared,
      neighborhoods_computed, candidates_pruned, shards_pruned, arena_bytes,
      wall_seconds * 1e3);
  if ((cache_hits != 0 || cache_misses != 0 || cache_bytes != 0) &&
      written > 0 && static_cast<std::size_t>(written) < sizeof(buffer)) {
    std::snprintf(buffer + written, sizeof(buffer) - written,
                  " cache_hits=%zu cache_misses=%zu cache_bytes=%zu",
                  cache_hits, cache_misses, cache_bytes);
  }
  return buffer;
}

std::string ExecStats::ToJson() const {
  return "{\"blocks_scanned\": " + std::to_string(blocks_scanned) +
         ", \"blocks_skipped\": " + std::to_string(blocks_skipped) +
         ", \"points_compared\": " + std::to_string(points_compared) +
         ", \"neighborhoods_computed\": " +
         std::to_string(neighborhoods_computed) +
         ", \"candidates_pruned\": " + std::to_string(candidates_pruned) +
         ", \"shards_pruned\": " + std::to_string(shards_pruned) +
         ", \"cache_hits\": " + std::to_string(cache_hits) +
         ", \"cache_misses\": " + std::to_string(cache_misses) +
         ", \"cache_bytes\": " + std::to_string(cache_bytes) +
         ", \"arena_bytes\": " + std::to_string(arena_bytes) +
         ", \"wall_ms\": " + FormatDouble(wall_seconds * 1e3) + "}";
}

}  // namespace knnq
