// Section 3: a kNN-select on the INNER relation of a kNN-join.
//
// Query semantics (the conceptually correct QEP):
//     (E1 JOIN_kNN E2) INTERSECT (E1 x sigma_{k_select, focal}(E2))
// i.e. pairs (e1, e2) where e2 is among the join_k nearest E2-points of
// e1 AND among the select_k nearest E2-points of the focal point.
// Pushing the select below the join's inner side is INVALID (Figures 1
// and 2 of the paper), so the optimized algorithms must prune without
// reducing the join's inner input:
//
//  * Naive    - the conceptually correct QEP itself: compute the full
//               join (a neighborhood per outer point), filter against
//               the focal neighborhood. The baseline of Figure 19.
//  * Counting - Procedure 1: per outer point, count inner points in
//               blocks certainly closer than the nearest focal neighbor;
//               more than join_k such points prove the neighborhoods
//               cannot intersect.
//  * Block-Marking - Procedures 2 + 3: preprocess the OUTER index once,
//               marking whole blocks Non-Contributing via the
//               (r + d + f_farthest) < f_center test on block centers;
//               only points in Contributing blocks join.

#ifndef KNNQ_SRC_CORE_SELECT_INNER_JOIN_H_
#define KNNQ_SRC_CORE_SELECT_INNER_JOIN_H_

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// The query: E1 (outer) joined with E2 (inner), select on E2.
struct SelectInnerJoinQuery {
  /// E1. The Block-Marking preprocessing walks this index's blocks.
  const SpatialIndex* outer = nullptr;
  /// E2: the join's inner relation and the select's input.
  const SpatialIndex* inner = nullptr;
  /// k of the join (k_bowtie in the paper).
  std::size_t join_k = 0;
  /// Focal point of the select.
  Point focal;
  /// k of the select (k_sigma in the paper).
  std::size_t select_k = 0;
};

/// How Block-Marking classifies the outer blocks.
enum class PreprocessMode {
  /// The paper's contour rule: stop scanning once a closed ring of
  /// Non-Contributing blocks is found (Procedure 3, Figure 6).
  kContour,
  /// Probe every outer block. Slower preprocessing, exact
  /// classification even for adversarial mixed-density layouts (see
  /// DESIGN.md note 3).
  kExhaustive,
};

/// Where the Non-Contributing test probes a block (Theorem 1 ablation).
enum class ProbePoint {
  /// The block center: added slack = diagonal (the paper's choice,
  /// proven minimal by Theorem 1).
  kCenter,
  /// A block corner: correctness then demands doubled slack
  /// (x = 2y with y the probe's distance to the farthest corner), so
  /// fewer blocks prune. Exists to measure what Theorem 1 saves.
  kCorner,
};

/// Execution counters exposed for tests, EXPLAIN and bench reporting.
struct SelectInnerJoinStats {
  /// Outer points whose neighborhood was computed.
  std::size_t neighborhoods_computed = 0;
  /// Outer points pruned without a neighborhood computation (Counting).
  std::size_t pruned_points = 0;
  /// Outer blocks probed during preprocessing (Block-Marking).
  std::size_t blocks_preprocessed = 0;
  /// Outer blocks classified Contributing (Block-Marking).
  std::size_t contributing_blocks = 0;
};

/// The conceptually correct QEP (join first, filter after). Pairs are
/// filtered in a pipeline, which changes memory use but not the work:
/// every outer neighborhood is computed. Fails when join_k == 0 or
/// select_k == 0 or any relation pointer is null. `exec` (optional,
/// like `stats`) accumulates the uniform counters; `shared_cache`
/// (optional) memoizes getkNN probes across queries.
Result<JoinResult> SelectInnerJoinNaive(
    const SelectInnerJoinQuery& query,
    SelectInnerJoinStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Procedure 1. Same output as the naive QEP.
Result<JoinResult> SelectInnerJoinCounting(
    const SelectInnerJoinQuery& query,
    SelectInnerJoinStats* stats = nullptr, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Procedures 2 + 3. Same output as the naive QEP.
Result<JoinResult> SelectInnerJoinBlockMarking(
    const SelectInnerJoinQuery& query,
    PreprocessMode mode = PreprocessMode::kContour,
    SelectInnerJoinStats* stats = nullptr,
    ProbePoint probe = ProbePoint::kCenter, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_SELECT_INNER_JOIN_H_
