// Section 3's completeness case: a kNN-select on the OUTER relation of
// a kNN-join. Unlike the inner-side case, this pushdown is VALID
// (Figure 3): excluding outer points early only removes join rows the
// final filter would discard anyway.
//
// Both QEPs are provided so the equivalence itself is testable and
// benchmarkable:
//   * Pushed  - evaluate the select, join only the selected points.
//   * Late    - join every outer point, filter pairs afterwards.

#ifndef KNNQ_SRC_CORE_SELECT_OUTER_JOIN_H_
#define KNNQ_SRC_CORE_SELECT_OUTER_JOIN_H_

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/core/result_types.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// The query: sigma_{select_k, focal}(E1) JOIN_kNN E2.
struct SelectOuterJoinQuery {
  /// E1: the join's outer relation and the select's input.
  const SpatialIndex* outer = nullptr;
  /// E2: the join's inner relation.
  const SpatialIndex* inner = nullptr;
  /// k of the join.
  std::size_t join_k = 0;
  /// Focal point of the select over E1.
  Point focal;
  /// k of the select.
  std::size_t select_k = 0;
};

/// Pushed-down plan (QEP1 of Figure 3): select first, join the
/// survivors. This is the plan an optimizer should always choose.
/// `exec` (optional) accumulates the uniform counters; `shared_cache`
/// (optional) memoizes getkNN probes across queries.
Result<JoinResult> SelectOuterJoinPushed(
    const SelectOuterJoinQuery& query, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

/// Late-filter plan (QEP2 of Figure 3): full join, then discard pairs
/// whose outer point fails the select. Same output, more work.
Result<JoinResult> SelectOuterJoinLate(
    const SelectOuterJoinQuery& query, ExecStats* exec = nullptr,
    NeighborhoodCache* shared_cache = nullptr);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_SELECT_OUTER_JOIN_H_
