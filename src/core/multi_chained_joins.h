// The conclusion's outlook: "the ideas presented in this paper pave
// the way towards a query optimizer that can support spatial queries
// with MORE than two kNN predicates". This module generalizes the
// chained case to arbitrary chain length:
//
//     R0 -> R1 -> ... -> Rn   with per-hop k values k_1 ... k_n,
// producing rows (p0, p1, ..., pn) where p_{i+1} is among the k_{i+1}
// nearest R_{i+1}-points of p_i.
//
// Correctness follows by induction from the paper's chained-join rule
// (each prefix acts as a select on the OUTER side of the next join, a
// valid pushdown), so the nested pipeline with per-hop caching -
// QEP3's generalization - equals the independent pairwise evaluation.

#ifndef KNNQ_SRC_CORE_MULTI_CHAINED_JOINS_H_
#define KNNQ_SRC_CORE_MULTI_CHAINED_JOINS_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/exec_stats.h"
#include "src/index/spatial_index.h"

namespace knnq {

class NeighborhoodCache;  // src/engine/neighborhood_cache.h

/// A chain query over n+1 relations.
struct ChainQuery {
  /// The relations R0 ... Rn, in chain order.
  std::vector<const SpatialIndex*> relations;
  /// ks[i] is the k of the join R_i -> R_{i+1}; size = relations - 1.
  std::vector<std::size_t> ks;
};

/// One output row: point ids, one per relation, in chain order.
using ChainRow = std::vector<PointId>;

/// Rows sorted lexicographically (the canonical order).
using ChainResult = std::vector<ChainRow>;

/// Execution counters.
struct ChainStats {
  /// Neighborhood computations per hop (size = ks.size()).
  std::vector<std::size_t> probes_per_hop;
  std::size_t cache_hits = 0;
};

/// Generalized QEP3: nested pipeline; each hop memoizes neighborhoods
/// per source point when `cache` is set. Fails on fewer than two
/// relations, null relations, size mismatch, or zero k. `exec`
/// (optional) accumulates the uniform counters; `shared_cache`
/// (optional) memoizes getkNN probes across queries.
Result<ChainResult> ChainedPathJoin(
    const ChainQuery& query, bool cache = true, ChainStats* stats = nullptr,
    ExecStats* exec = nullptr, NeighborhoodCache* shared_cache = nullptr);

/// Specification evaluator: every pairwise join computed independently
/// and in full (one neighborhood per point of each R_i), rows stitched
/// by hash join. The generalization of Figure 13's QEP2.
Result<ChainResult> ChainedPathJoinNaive(const ChainQuery& query);

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_MULTI_CHAINED_JOINS_H_
