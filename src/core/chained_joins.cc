#include "src/core/chained_joins.h"

#include <unordered_map>
#include <vector>

#include "src/core/knn_join.h"
#include "src/core/phase_trace.h"
#include "src/engine/neighborhood_cache.h"
#include "src/index/knn_searcher.h"

namespace knnq {

namespace {

Status ValidateQuery(const ChainedJoinsQuery& query) {
  if (query.a == nullptr || query.b == nullptr || query.c == nullptr) {
    return Status::InvalidArgument("query relations must be non-null");
  }
  if (query.k_ab == 0 || query.k_bc == 0) {
    return Status::InvalidArgument("join k values must be > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<TripletResult> ChainedJoinsRightDeep(const ChainedJoinsQuery& query,
                                            ChainedJoinsStats* stats,
                                            ExecStats* exec,
                                            NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  ChainedJoinsStats local;
  if (stats == nullptr) stats = &local;

  // Materialize B JOIN C for every b - including b's no a will ever
  // reach; that blind effort is QEP1's documented drawback.
  CachingKnnSearcher c_searcher(*query.c, shared_cache);
  std::unordered_map<PointId, Neighborhood> bc;
  bc.reserve(query.b->num_points());
  {
    PhaseSpan phase("join_bc_materialize", &c_searcher.stats());
    for (const Point& b_point : query.b->points()) {
      bc.emplace(b_point.id, c_searcher.GetKnn(b_point, query.k_bc));
      ++stats->b_neighborhoods_computed;
    }
  }

  CachingKnnSearcher b_searcher(*query.b, shared_cache);
  TripletResult triplets;
  {
    PhaseSpan phase("join_ab_probe", &b_searcher.stats());
    for (const Point& a_point : query.a->points()) {
      const Neighborhood nbr_ab = b_searcher.GetKnn(a_point, query.k_ab);
      for (const Neighbor& bn : nbr_ab) {
        for (const Neighbor& cn : bc.at(bn.point.id)) {
          triplets.push_back(Triplet{
              .a = a_point.id, .b = bn.point.id, .c = cn.point.id});
        }
      }
    }
  }
  if (exec != nullptr) {
    exec->AddSearch(c_searcher.stats());
    exec->AddSearch(b_searcher.stats());
  }
  Canonicalize(triplets);
  return triplets;
}

Result<TripletResult> ChainedJoinsJoinIntersection(
    const ChainedJoinsQuery& query, ChainedJoinsStats* stats,
    ExecStats* exec, NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  ChainedJoinsStats local;
  if (stats == nullptr) stats = &local;

  // Both joins in full, blind to each other, then INTERSECT_B.
  auto ab =
      KnnJoin(query.a->points(), *query.b, query.k_ab, exec, shared_cache);
  if (!ab.ok()) return ab.status();
  auto bc =
      KnnJoin(query.b->points(), *query.c, query.k_bc, exec, shared_cache);
  if (!bc.ok()) return bc.status();
  stats->b_neighborhoods_computed = query.b->num_points();

  std::unordered_map<PointId, std::vector<PointId>> c_by_b;
  for (const JoinPair& pair : *bc) {
    c_by_b[pair.outer.id].push_back(pair.inner.id);
  }
  TripletResult triplets;
  for (const JoinPair& pair : *ab) {
    const auto it = c_by_b.find(pair.inner.id);
    if (it == c_by_b.end()) continue;
    for (const PointId c_id : it->second) {
      triplets.push_back(
          Triplet{.a = pair.outer.id, .b = pair.inner.id, .c = c_id});
    }
  }
  Canonicalize(triplets);
  return triplets;
}

Result<TripletResult> ChainedJoinsNested(const ChainedJoinsQuery& query,
                                         bool cache_bc,
                                         ChainedJoinsStats* stats,
                                         ExecStats* exec,
                                         NeighborhoodCache* shared_cache) {
  if (Status s = ValidateQuery(query); !s.ok()) return s;
  ChainedJoinsStats local;
  if (stats == nullptr) stats = &local;

  CachingKnnSearcher b_searcher(*query.b, shared_cache);
  CachingKnnSearcher c_searcher(*query.c, shared_cache);
  // Section 4.2.1: key the cache by b; a b in the neighborhood of
  // several a's is joined with C only once.
  std::unordered_map<PointId, Neighborhood> cache;

  TripletResult triplets;
  {
    // Both searchers drive one interleaved loop, so the phase observes
    // the pair of them.
    PhaseSpan phase("join_nested_probe", &b_searcher.stats(),
                    &c_searcher.stats());
    for (const Point& a_point : query.a->points()) {
      const Neighborhood nbr_ab = b_searcher.GetKnn(a_point, query.k_ab);
      for (const Neighbor& bn : nbr_ab) {
        const Neighborhood* nbr_bc = nullptr;
        Neighborhood uncached;
        if (cache_bc) {
          const auto it = cache.find(bn.point.id);
          if (it != cache.end()) {
            ++stats->cache_hits;
            nbr_bc = &it->second;
          } else {
            ++stats->b_neighborhoods_computed;
            nbr_bc = &cache
                          .emplace(bn.point.id,
                                   c_searcher.GetKnn(bn.point, query.k_bc))
                          .first->second;
          }
        } else {
          ++stats->b_neighborhoods_computed;
          uncached = c_searcher.GetKnn(bn.point, query.k_bc);
          nbr_bc = &uncached;
        }
        for (const Neighbor& cn : *nbr_bc) {
          triplets.push_back(Triplet{
              .a = a_point.id, .b = bn.point.id, .c = cn.point.id});
        }
      }
    }
    phase.Count("candidates_pruned", stats->cache_hits);
  }
  if (exec != nullptr) {
    exec->AddSearch(b_searcher.stats());
    exec->AddSearch(c_searcher.stats());
    // Cache hits avoided a full (B JOIN C) neighborhood computation.
    exec->candidates_pruned += stats->cache_hits;
  }
  Canonicalize(triplets);
  return triplets;
}

}  // namespace knnq
