// ExecStats: the uniform execution counters every src/core evaluator
// reports, regardless of query shape or algorithm.
//
// The per-family structs (SelectInnerJoinStats, ChainedJoinsStats, ...)
// keep their algorithm-specific counters for ablation benches and
// targeted tests; ExecStats is the common denominator the engine layer
// aggregates across heterogeneous plans and surfaces in EXPLAIN, CLI
// and benchmark output.

#ifndef KNNQ_SRC_CORE_EXEC_STATS_H_
#define KNNQ_SRC_CORE_EXEC_STATS_H_

#include <cstddef>
#include <string>

#include "src/index/locality.h"

namespace knnq {

/// Execution counters of one evaluator call (or, merged, one batch).
struct ExecStats {
  /// Index blocks popped from block scans: locality construction plus
  /// the direct pruning scans of Counting and Block-Marking.
  std::size_t blocks_scanned = 0;
  /// Locality blocks skipped wholesale because their MINDIST exceeded
  /// the running k-th distance (bound-based block skipping).
  std::size_t blocks_skipped = 0;
  /// Candidate points compared against a query point during
  /// neighborhood extraction.
  std::size_t points_compared = 0;
  /// getkNN invocations (localities computed).
  std::size_t neighborhoods_computed = 0;
  /// Outer tuples or whole blocks excluded without neighborhood work -
  /// the quantity the paper's optimizations exist to maximize.
  std::size_t candidates_pruned = 0;
  /// Wall-clock time of the evaluation. Evaluators leave this at zero;
  /// the executor wrapper (PhysicalPlan::Execute) fills it so counter
  /// accumulation stays out of the timed region's hot loops.
  double wall_seconds = 0.0;
  /// getkNN probes served from the engine's shared NeighborhoodCache
  /// (a hit skips locality construction entirely) vs. computed and
  /// memoized. Both zero when the engine runs without a cache.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Footprint snapshot of the shared cache after this query (bytes).
  /// Filled by QueryEngine::Run; a snapshot, not a per-query cost.
  std::size_t cache_bytes = 0;
  /// Scratch-arena footprint of the searcher(s) that ran this query
  /// (bytes). A gauge like cache_bytes: merging keeps the maximum.
  std::size_t arena_bytes = 0;
  /// Engine shards skipped wholesale because their partition bounds lay
  /// beyond the running k-th distance (distance-bound shard pruning).
  /// Zero for unsharded relations.
  std::size_t shards_pruned = 0;

  /// Folds a KnnSearcher's SearchStats into the scan counters.
  void AddSearch(const SearchStats& search) {
    blocks_scanned += search.blocks_scanned;
    blocks_skipped += search.blocks_skipped;
    points_compared += search.points_scanned;
    neighborhoods_computed += search.localities_computed;
    cache_hits += search.cache_hits;
    cache_misses += search.cache_misses;
    shards_pruned += search.shards_pruned;
    if (search.arena_bytes > arena_bytes) arena_bytes = search.arena_bytes;
  }

  /// Sums counters and wall time (batch aggregation). cache_bytes and
  /// arena_bytes are footprint snapshots, so merging keeps the maximum,
  /// not the sum.
  void Merge(const ExecStats& other) {
    blocks_scanned += other.blocks_scanned;
    blocks_skipped += other.blocks_skipped;
    points_compared += other.points_compared;
    neighborhoods_computed += other.neighborhoods_computed;
    candidates_pruned += other.candidates_pruned;
    wall_seconds += other.wall_seconds;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    shards_pruned += other.shards_pruned;
    if (other.cache_bytes > cache_bytes) cache_bytes = other.cache_bytes;
    if (other.arena_bytes > arena_bytes) arena_bytes = other.arena_bytes;
  }

  /// True when every counter (wall time and cache footprint aside) is
  /// zero. A fully cache-served query is not empty (its hits count),
  /// and neither is one answered purely by skipping: blocks_skipped
  /// and shards_pruned are work evidence too.
  bool empty() const {
    return blocks_scanned == 0 && blocks_skipped == 0 &&
           points_compared == 0 && neighborhoods_computed == 0 &&
           candidates_pruned == 0 && cache_hits == 0 &&
           cache_misses == 0 && shards_pruned == 0;
  }

  /// One-line rendering, e.g.
  /// "blocks=12 skipped=4 points=480 neighborhoods=3 pruned=0
  /// shards_pruned=0 arena_bytes=2048 wall=0.52ms"; when a cache was in
  /// play,
  /// " cache_hits=5 cache_misses=2 cache_bytes=.." is appended.
  std::string ToString() const;

  /// JSON object, field for field: `{"blocks_scanned": ...,
  /// "wall_ms": ...}`. The single renderer behind the wire protocol's
  /// "stats" field and the slow-query log, so both emit identical
  /// bytes.
  std::string ToJson() const;
};

}  // namespace knnq

#endif  // KNNQ_SRC_CORE_EXEC_STATS_H_
