#include "src/durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/data/dataset_io.h"
#include "src/durability/codec.h"
#include "src/durability/wal.h"

namespace knnq::durability {

namespace {

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync dir " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::Ok();
}

Status WriteFileSynced(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Status::IoError("write " + path + ": " +
                                       std::strerror(errno));
      ::close(fd);
      return s;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status s =
        Status::IoError("fsync " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace

Status WriteSnapshot(const std::string& path, const SnapshotImage& image) {
  ByteWriter body;
  body.U64(image.lsn);
  body.U32(static_cast<std::uint32_t>(image.relations.size()));
  for (const SnapshotRelation& rel : image.relations) {
    body.Str(rel.name);
    body.U8(static_cast<std::uint8_t>(rel.type));
    body.I64(rel.next_id);
    body.U64(rel.last_lsn);
    body.U64(rel.points.size());
    for (const Point& p : rel.points) {
      body.I64(p.id);
      body.F64(p.x);
      body.F64(p.y);
    }
  }
  std::string file(kSnapshotMagic);
  const std::string& encoded = body.bytes();
  file += encoded;
  ByteWriter crc;
  crc.U32(Crc32(encoded.data(), encoded.size()));
  file += crc.bytes();

  const std::string tmp = path + ".tmp";
  if (Status s = WriteFileSynced(tmp, file); !s.ok()) return s;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return SyncDir(ParentDir(path));
}

Result<SnapshotImage> ReadSnapshot(const std::string& path) {
  auto contents = ReadTextFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  if (data.size() < kSnapshotMagic.size() + 4 ||
      std::string_view(data).substr(0, kSnapshotMagic.size()) !=
          kSnapshotMagic) {
    return Status::ParseError("not a knnq snapshot (bad magic): " + path);
  }
  const std::string_view body =
      std::string_view(data).substr(kSnapshotMagic.size(),
                                    data.size() - kSnapshotMagic.size() - 4);
  ByteReader crc_reader(
      std::string_view(data).substr(data.size() - 4));
  std::uint32_t stored_crc = 0;
  crc_reader.U32(&stored_crc);
  if (Crc32(body.data(), body.size()) != stored_crc) {
    return Status::ParseError("snapshot CRC mismatch: " + path);
  }

  SnapshotImage image;
  ByteReader reader(body);
  std::uint32_t relation_count = 0;
  if (!reader.U64(&image.lsn) || !reader.U32(&relation_count)) {
    return Status::ParseError("snapshot header undecodable: " + path);
  }
  image.relations.reserve(relation_count);
  for (std::uint32_t r = 0; r < relation_count; ++r) {
    SnapshotRelation rel;
    std::uint8_t type = 0;
    std::uint64_t count = 0;
    if (!reader.Str(&rel.name) || !reader.U8(&type) ||
        !reader.I64(&rel.next_id) || !reader.U64(&rel.last_lsn) ||
        !reader.U64(&count) || type > 2 || count > body.size()) {
      return Status::ParseError("snapshot relation " + std::to_string(r) +
                                " undecodable: " + path);
    }
    rel.type = static_cast<IndexType>(type);
    rel.points.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Point p;
      if (!reader.I64(&p.id) || !reader.F64(&p.x) || !reader.F64(&p.y)) {
        return Status::ParseError("snapshot relation " + rel.name +
                                  " truncated: " + path);
      }
      rel.points.push_back(p);
    }
    image.relations.push_back(std::move(rel));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("snapshot has trailing bytes: " + path);
  }
  return image;
}

}  // namespace knnq::durability
