// Byte-level serialization shared by the WAL (src/durability/wal.h)
// and the snapshot writer (src/durability/snapshot.h): fixed-width
// little-endian scalar append/read plus CRC-32.
//
// Records are read back on the machine that wrote them (a --data-dir
// belongs to one server), but the encoding is pinned to little-endian
// anyway so a copied data directory is portable across the platforms
// we build for.

#ifndef KNNQ_SRC_DURABILITY_CODEC_H_
#define KNNQ_SRC_DURABILITY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace knnq::durability {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size`
/// bytes at `data` — the per-record and per-snapshot checksum.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Appends fixed-width little-endian scalars to an owned buffer.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void Raw(const void* data, std::size_t size) {
    // The builds this repo targets are little-endian; memcpy of the
    // object representation IS the wire encoding.
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Reads the ByteWriter encoding back. Every accessor returns false on
/// underrun instead of reading past the end, so a truncated record
/// parses as "torn", never as garbage values.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(std::int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s) {
    std::uint32_t size = 0;
    if (!U32(&size) || pos_ + size > data_.size()) return false;
    s->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  bool Raw(void* v, std::size_t size) {
    if (pos_ + size > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace knnq::durability

#endif  // KNNQ_SRC_DURABILITY_CODEC_H_
