// DurabilityManager: the serving tier's crash-safety subsystem, tying
// the WAL (wal.h) and snapshots (snapshot.h) to the engine's single
// write path through the WalSink hook (EngineOptions::wal).
//
// Lifecycle of a durable server (tools/knnq_cli.cpp, `serve
// --data-dir DIR`):
//
//   1. Open(options)      — read DIR/catalog.snapshot (if present) and
//                           scan DIR/wal.log's verified prefix.
//   2. SeedCatalog(&cat)  — rebuild every snapshot relation into the
//                           catalog (index type, next_id and last_lsn
//                           restored exactly).
//   3. QueryEngine engine(cat, {.wal = manager, ...});
//   4. Recover(&engine)   — replay the WAL records past the snapshot
//                           LSN through engine->ExecuteDml (the sink
//                           hands back each record's original LSN
//                           instead of re-appending), truncate any
//                           torn tail, and cut a baseline snapshot on
//                           a first boot so relations registered from
//                           --data files become recoverable.
//   5. Serve. Every applying commit calls BeginCommit (assigns the
//      next LSN, appends, applies the sync policy) and EndCommit
//      (releases the commit token; may trigger an auto snapshot per
//      --snapshot-interval-ops). The SNAPSHOT admin verb calls
//      Snapshot() directly.
//
// Concurrency: BeginCommit takes a shared "commit token" held until
// EndCommit; Snapshot takes it exclusively, so a snapshot sees no
// half-applied commit — its LSN is exactly the log tail, and the
// whole WAL truncates afterwards. LSN assignment and the append are
// done under one mutex, so file order equals LSN order.

#ifndef KNNQ_SRC_DURABILITY_DURABILITY_MANAGER_H_
#define KNNQ_SRC_DURABILITY_DURABILITY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "src/common/status.h"
#include "src/durability/snapshot.h"
#include "src/durability/wal.h"
#include "src/engine/query_engine.h"
#include "src/index/index_factory.h"
#include "src/obs/metrics_registry.h"
#include "src/planner/catalog.h"

namespace knnq::durability {

struct DurabilityOptions {
  /// Directory holding wal.log and catalog.snapshot. Must exist.
  std::string data_dir;
  WalSyncPolicy sync = WalSyncPolicy::kAlways;
  /// kInterval: fsync every this-many appends.
  std::size_t sync_interval_ops = 64;
  /// Cut a snapshot automatically every this-many committed DML ops;
  /// 0 means only explicit SNAPSHOT verbs (and the baseline) snapshot.
  std::size_t snapshot_interval_ops = 0;
  /// Index construction parameters for rebuilding snapshot relations.
  IndexOptions index_options;
};

/// What Recover found and did — surfaced in the serve banner and the
/// crash-drill assertions.
struct RecoveryReport {
  bool from_snapshot = false;
  std::uint64_t snapshot_lsn = 0;
  std::uint64_t replayed_records = 0;
  /// True when the WAL had a torn/corrupt tail that was dropped;
  /// `wal_tail_error` says where and why.
  bool wal_truncated = false;
  std::string wal_tail_error;
  /// The LSN the engine is at after recovery.
  std::uint64_t last_lsn = 0;
};

class DurabilityManager : public WalSink {
 public:
  /// Reads the snapshot and scans the WAL. Fails on I/O errors and on
  /// an unreadable snapshot (a torn WAL tail is NOT an error; Recover
  /// truncates it).
  static Result<std::unique_ptr<DurabilityManager>> Open(
      DurabilityOptions options);

  /// Rebuilds every snapshot relation into `catalog`. Call between
  /// Open and engine construction, on a catalog with no colliding
  /// names.
  Status SeedCatalog(Catalog* catalog);

  /// Replays the WAL tail through `engine` (whose options.wal must be
  /// this manager), truncates any torn tail, opens the writer, and
  /// cuts a baseline snapshot when none existed. Must be called once,
  /// before serving starts.
  Result<RecoveryReport> Recover(QueryEngine* engine);

  /// Cuts a snapshot of `engine`'s catalog at the current log tail
  /// and truncates the WAL. Quiesces commits for the duration. The
  /// SNAPSHOT admin verb and the auto-snapshot trigger both land here.
  /// Returns the snapshot's LSN.
  Result<std::uint64_t> Snapshot(QueryEngine* engine);

  /// Registers knnq_server_wal_* metrics (appends, bytes, syncs,
  /// snapshots, replayed records, current size, last LSN, unsynced
  /// ops, fsync lag).
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Appended-but-not-yet-fsynced records (the crash-loss window under
  /// --wal-sync interval/none; always 0 under the default `always`).
  std::uint64_t unsynced_ops() const {
    return unsynced_ops_.load(std::memory_order_relaxed);
  }

  /// Seconds the OLDEST unsynced record has been waiting for its
  /// fsync barrier; 0 when everything durable is on disk.
  double fsync_lag_seconds() const;

  /// False once an append has failed (disk full, I/O error): commits
  /// can no longer be made durable, so /readyz reports not-ready.
  bool writable() const {
    return writer_open_.load(std::memory_order_relaxed) &&
           !append_failed_.load(std::memory_order_relaxed);
  }

  /// The "wal" object of /statusz: policy, size, LSN, sync debt.
  std::string StatusJson() const;

  /// True when a snapshot existed at Open time (serve uses this to
  /// decide whether --data seeds or the snapshot does).
  bool recovered_from_snapshot() const { return have_snapshot_; }

  std::string wal_path() const { return options_.data_dir + "/wal.log"; }
  std::string snapshot_path() const {
    return options_.data_dir + "/catalog.snapshot";
  }

  // WalSink contract (called by the engine inside its write path).
  Result<std::uint64_t> BeginCommit(const DmlRequest& request) override;
  void EndCommit(std::uint64_t lsn, bool applied) override;

 private:
  explicit DurabilityManager(DurabilityOptions options)
      : options_(std::move(options)) {}

  DurabilityOptions options_;

  /// Loaded at Open.
  SnapshotImage snapshot_;
  bool have_snapshot_ = false;
  WalScan scan_;

  /// Replay mode: BeginCommit returns replay_lsn_ without appending.
  /// Only toggled by Recover, which runs single-threaded before the
  /// server accepts connections.
  bool replaying_ = false;
  std::uint64_t replay_lsn_ = 0;

  /// The engine EndCommit's auto-snapshot trigger snapshots. Set by
  /// Recover.
  QueryEngine* engine_ = nullptr;

  /// Commit token: shared from BeginCommit to EndCommit, exclusive
  /// across Snapshot.
  std::shared_mutex commit_mu_;
  /// Serializes LSN assignment with the append (file order == LSN
  /// order) and guards writer_ and last_lsn_.
  std::mutex wal_mu_;
  WalWriter writer_;
  std::uint64_t last_lsn_ = 0;

  /// Committed ops since the last snapshot, driving the auto trigger.
  std::atomic<std::uint64_t> ops_since_snapshot_{0};

  // Metric mirrors (relaxed atomics; scraped by callbacks).
  std::atomic<std::uint64_t> appends_total_{0};
  std::atomic<std::uint64_t> append_bytes_total_{0};
  std::atomic<std::uint64_t> syncs_total_{0};
  std::atomic<std::uint64_t> snapshots_total_{0};
  std::atomic<std::uint64_t> replayed_total_{0};
  std::atomic<std::uint64_t> wal_size_bytes_{0};
  std::atomic<std::uint64_t> last_lsn_metric_{0};

  /// Sync-debt tracking: records appended since the writer's last
  /// fsync barrier, and (while nonzero) the steady-clock ms at which
  /// the oldest of them was appended.
  std::atomic<std::uint64_t> unsynced_ops_{0};
  std::atomic<std::uint64_t> first_unsynced_ms_{0};

  /// Readiness: the writer opened (Recover ran) and no append failed.
  std::atomic<bool> writer_open_{false};
  std::atomic<bool> append_failed_{false};
};

}  // namespace knnq::durability

#endif  // KNNQ_SRC_DURABILITY_DURABILITY_MANAGER_H_
