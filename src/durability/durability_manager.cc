#include "src/durability/durability_manager.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "src/obs/log.h"

namespace knnq::durability {

namespace {

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    DurabilityOptions options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("--data-dir must not be empty");
  }
  if (::access(options.data_dir.c_str(), W_OK) != 0) {
    return Status::IoError("--data-dir is not a writable directory: " +
                           options.data_dir);
  }
  std::unique_ptr<DurabilityManager> mgr(
      new DurabilityManager(std::move(options)));
  if (FileExists(mgr->snapshot_path())) {
    auto image = ReadSnapshot(mgr->snapshot_path());
    if (!image.ok()) return image.status();
    mgr->snapshot_ = std::move(*image);
    mgr->have_snapshot_ = true;
  }
  if (FileExists(mgr->wal_path())) {
    auto scan = ScanWal(mgr->wal_path());
    if (!scan.ok()) return scan.status();
    mgr->scan_ = std::move(*scan);
  }
  return mgr;
}

Status DurabilityManager::SeedCatalog(Catalog* catalog) {
  for (SnapshotRelation& rel : snapshot_.relations) {
    IndexOptions build = options_.index_options;
    build.type = rel.type;
    auto index = BuildIndex(std::move(rel.points), build);
    if (!index.ok()) return index.status();
    if (Status s = catalog->AdoptRelation(rel.name,
                                          std::move(index.value()),
                                          rel.next_id);
        !s.ok()) {
      return s;
    }
    catalog->StampLsn(rel.name, rel.last_lsn);
  }
  return Status::Ok();
}

Result<RecoveryReport> DurabilityManager::Recover(QueryEngine* engine) {
  engine_ = engine;
  RecoveryReport report;
  report.from_snapshot = have_snapshot_;
  report.snapshot_lsn = snapshot_.lsn;
  report.wal_truncated = scan_.truncated;
  report.wal_tail_error = scan_.tail_error;
  last_lsn_ = std::max(snapshot_.lsn, scan_.last_lsn);

  // Replay mode: the engine's write path calls BeginCommit as usual,
  // but the sink hands back the record's original LSN instead of
  // appending — the replayed history is already on disk.
  replaying_ = true;
  for (WalRecord& record : scan_.records) {
    if (record.lsn <= snapshot_.lsn) continue;  // already in the image
    replay_lsn_ = record.lsn;
    // A replayed record may fail exactly as it did live (e.g. a batch
    // whose suffix was invalid applied only its prefix) — that IS the
    // recovered state, so the outcome is not an error here.
    (void)engine->ExecuteDml(std::move(record.request));
    ++report.replayed_records;
    replayed_total_.fetch_add(1, std::memory_order_relaxed);
  }
  replaying_ = false;
  scan_.records.clear();
  scan_.records.shrink_to_fit();

  // Open the writer over the verified prefix (dropping any torn
  // tail), or create a fresh log.
  auto writer = WalWriter::Open(
      wal_path(),
      WalWriter::Options{.sync = options_.sync,
                         .sync_interval_ops = options_.sync_interval_ops},
      scan_.good_bytes);
  if (!writer.ok()) return writer.status();
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    writer_ = std::move(*writer);
    wal_size_bytes_.store(writer_.size_bytes(), std::memory_order_relaxed);
    last_lsn_metric_.store(last_lsn_, std::memory_order_relaxed);
    writer_open_.store(true, std::memory_order_relaxed);
  }

  // First boot of this data dir: snapshot the seed relations (--data
  // files never hit the WAL) so every later record applies on top of
  // a recoverable base.
  if (!have_snapshot_) {
    auto cut = Snapshot(engine);
    if (!cut.ok()) return cut.status();
  }
  report.last_lsn = last_lsn_;
  return report;
}

Result<std::uint64_t> DurabilityManager::Snapshot(QueryEngine* engine) {
  // Quiesce: every in-flight commit holds the token shared from
  // append to publish, so once we hold it exclusively the catalog
  // reflects exactly the log tail.
  std::unique_lock<std::shared_mutex> quiesce(commit_mu_);
  SnapshotImage image;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    image.lsn = last_lsn_;
  }
  const Catalog& catalog = engine->catalog();
  for (const std::string& name : catalog.Names()) {
    auto rel = catalog.Get(name);
    if (!rel.ok()) continue;
    SnapshotRelation snap;
    snap.name = name;
    snap.type = (*rel)->index->type();
    snap.next_id = (*rel)->next_id;
    snap.last_lsn = (*rel)->last_lsn;
    snap.points = (*rel)->index->points();
    image.relations.push_back(std::move(snap));
  }
  if (Status s = WriteSnapshot(snapshot_path(), image); !s.ok()) return s;
  {
    std::lock_guard<std::mutex> wal_lock(wal_mu_);
    // The snapshot's LSN is the tail, so every logged record is now
    // redundant: the log restarts empty.
    if (Status s = writer_.TruncateAll(); !s.ok()) return s;
    wal_size_bytes_.store(writer_.size_bytes(), std::memory_order_relaxed);
    syncs_total_.store(writer_.syncs(), std::memory_order_relaxed);
    // A truncated log has nothing left to fsync: the debt is gone.
    unsynced_ops_.store(0, std::memory_order_relaxed);
    first_unsynced_ms_.store(0, std::memory_order_relaxed);
  }
  have_snapshot_ = true;
  ops_since_snapshot_.store(0, std::memory_order_relaxed);
  snapshots_total_.fetch_add(1, std::memory_order_relaxed);
  return image.lsn;
}

Result<std::uint64_t> DurabilityManager::BeginCommit(
    const DmlRequest& request) {
  if (replaying_) return replay_lsn_;
  commit_mu_.lock_shared();
  std::lock_guard<std::mutex> wal_lock(wal_mu_);
  const std::uint64_t lsn = last_lsn_ + 1;
  const std::uint64_t syncs_before = writer_.syncs();
  auto bytes = writer_.Append(lsn, request);
  if (!bytes.ok()) {
    append_failed_.store(true, std::memory_order_relaxed);
    commit_mu_.unlock_shared();
    return bytes.status();
  }
  last_lsn_ = lsn;
  appends_total_.fetch_add(1, std::memory_order_relaxed);
  append_bytes_total_.fetch_add(*bytes, std::memory_order_relaxed);
  syncs_total_.store(writer_.syncs(), std::memory_order_relaxed);
  // Sync-debt bookkeeping: an fsync barrier inside Append flushed
  // everything appended so far (this record included); otherwise this
  // record joined the crash-loss window, and if it opened the window
  // its append time anchors the fsync-lag gauge.
  if (writer_.syncs() != syncs_before) {
    unsynced_ops_.store(0, std::memory_order_relaxed);
    first_unsynced_ms_.store(0, std::memory_order_relaxed);
  } else if (unsynced_ops_.fetch_add(1, std::memory_order_relaxed) == 0) {
    first_unsynced_ms_.store(SteadyNowMs(), std::memory_order_relaxed);
  }
  wal_size_bytes_.store(writer_.size_bytes(), std::memory_order_relaxed);
  last_lsn_metric_.store(lsn, std::memory_order_relaxed);
  return lsn;
}

void DurabilityManager::EndCommit(std::uint64_t lsn, bool applied) {
  if (replaying_) return;
  commit_mu_.unlock_shared();
  if (!applied || options_.snapshot_interval_ops == 0) return;
  const std::uint64_t n =
      ops_since_snapshot_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n != options_.snapshot_interval_ops || engine_ == nullptr) return;
  auto cut = Snapshot(engine_);
  if (!cut.ok()) {
    obs::Logger::Global().Log(
        obs::LogLevel::kWarn, "wal_auto_snapshot_failed",
        {obs::LogField::Num("at_lsn", static_cast<double>(lsn)),
         obs::LogField::Str("error", cut.status().ToString())});
  }
}

void DurabilityManager::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter(
      "knnq_server_wal_appends_total", "WAL records appended.",
      [this] { return appends_total_.load(std::memory_order_relaxed); });
  registry->RegisterCallbackCounter(
      "knnq_server_wal_bytes_total", "WAL bytes appended.", [this] {
        return append_bytes_total_.load(std::memory_order_relaxed);
      });
  registry->RegisterCallbackCounter(
      "knnq_server_wal_syncs_total", "WAL fsync barriers issued.",
      [this] { return syncs_total_.load(std::memory_order_relaxed); });
  registry->RegisterCallbackCounter(
      "knnq_server_wal_snapshots_total",
      "Snapshots cut (manual, auto and baseline).",
      [this] { return snapshots_total_.load(std::memory_order_relaxed); });
  registry->RegisterCallbackCounter(
      "knnq_server_wal_replayed_records_total",
      "WAL records replayed during recovery.",
      [this] { return replayed_total_.load(std::memory_order_relaxed); });
  registry->RegisterCallbackGauge(
      "knnq_server_wal_size_bytes", "Current WAL file size.", [this] {
        return static_cast<double>(
            wal_size_bytes_.load(std::memory_order_relaxed));
      });
  registry->RegisterCallbackGauge(
      "knnq_server_wal_last_lsn", "Last assigned log sequence number.",
      [this] {
        return static_cast<double>(
            last_lsn_metric_.load(std::memory_order_relaxed));
      });
  registry->RegisterCallbackGauge(
      "knnq_server_wal_unsynced_ops",
      "Records appended but not yet fsynced (the crash-loss window).",
      [this] { return static_cast<double>(unsynced_ops()); });
  registry->RegisterCallbackGauge(
      "knnq_server_wal_fsync_lag_seconds",
      "Seconds the oldest unsynced record has waited for its fsync.",
      [this] { return fsync_lag_seconds(); });
}

double DurabilityManager::fsync_lag_seconds() const {
  if (unsynced_ops_.load(std::memory_order_relaxed) == 0) return 0.0;
  const std::uint64_t first =
      first_unsynced_ms_.load(std::memory_order_relaxed);
  if (first == 0) return 0.0;
  const std::uint64_t now = SteadyNowMs();
  return now > first ? static_cast<double>(now - first) / 1000.0 : 0.0;
}

std::string DurabilityManager::StatusJson() const {
  char lag[32];
  std::snprintf(lag, sizeof(lag), "%.3f", fsync_lag_seconds());
  return std::string("{\"sync_policy\": \"") + ToString(options_.sync) +
         "\", \"writable\": " + (writable() ? "true" : "false") +
         ", \"size_bytes\": " +
         std::to_string(wal_size_bytes_.load(std::memory_order_relaxed)) +
         ", \"last_lsn\": " +
         std::to_string(last_lsn_metric_.load(std::memory_order_relaxed)) +
         ", \"appends\": " +
         std::to_string(appends_total_.load(std::memory_order_relaxed)) +
         ", \"syncs\": " +
         std::to_string(syncs_total_.load(std::memory_order_relaxed)) +
         ", \"snapshots\": " +
         std::to_string(snapshots_total_.load(std::memory_order_relaxed)) +
         ", \"replayed_records\": " +
         std::to_string(replayed_total_.load(std::memory_order_relaxed)) +
         ", \"unsynced_ops\": " + std::to_string(unsynced_ops()) +
         ", \"fsync_lag_seconds\": " + lag + "}";
}

}  // namespace knnq::durability
