// Write-ahead log: the durable record of every DmlRequest the engine
// commits, in commit (= LSN) order.
//
// File layout: an 8-byte magic ("KNNQWAL1"), then length-prefixed
// records
//
//   u32 body_size | u32 crc32(body) | body
//   body = u64 lsn | u8 kind | str relation | payload
//     kMutate payload: u32 op_count, then per op
//         u8 op_kind | insert: i64 id, f64 x, f64 y | erase: i64 id
//     kLoad payload:   u64 point_count, then per point i64 id, f64 x,
//         f64 y  (LOAD logs the loaded points, not the source path, so
//         replay never depends on an external file still existing)
//
// A scan trusts exactly the prefix that checks out: the first record
// whose size field runs past EOF, whose CRC mismatches, or whose LSN
// is not strictly greater than its predecessor's ends the scan — that
// is where a crash (or corruption) tore the log, and recovery
// truncates back to it. LSNs are assigned by the DurabilityManager,
// strictly increasing from the snapshot's.
//
// Sync policy decides when appends reach the platter: `always` fsyncs
// every record (no committed-and-acknowledged write is ever lost),
// `interval` fsyncs every N appends (bounded loss window, near-memory
// append cost), `none` leaves flushing to the OS.

#ifndef KNNQ_SRC_DURABILITY_WAL_H_
#define KNNQ_SRC_DURABILITY_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/engine/query_engine.h"

namespace knnq::durability {

inline constexpr std::string_view kWalMagic = "KNNQWAL1";

/// When WalWriter::Append calls fsync. Parsed from --wal-sync.
enum class WalSyncPolicy {
  kAlways,
  kInterval,
  kNone,
};

Result<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text);
const char* ToString(WalSyncPolicy policy);

/// One logged commit.
struct WalRecord {
  std::uint64_t lsn = 0;
  DmlRequest request;
};

/// What ScanWal trusted — and where it stopped trusting.
struct WalScan {
  /// The records of the good prefix, in LSN order.
  std::vector<WalRecord> records;
  /// Byte length of the good prefix (magic included). Recovery
  /// truncates the file here and appends after it.
  std::uint64_t good_bytes = 0;
  /// LSN of the last good record (0 when none).
  std::uint64_t last_lsn = 0;
  /// True when bytes beyond good_bytes exist but did not verify — a
  /// torn tail. `tail_error` says what was wrong and at which offset.
  bool truncated = false;
  std::string tail_error;
};

/// Encodes one record exactly as Append writes it (exposed for the
/// corruption tests, which flip bytes in known places).
std::string EncodeWalRecord(std::uint64_t lsn, const DmlRequest& request);

/// Reads and verifies `path`. Fails only on I/O errors or a missing /
/// wrong magic (a WAL that never existed is the caller's case to
/// handle); a torn tail is NOT an error — it comes back as
/// truncated=true with everything before it intact.
Result<WalScan> ScanWal(const std::string& path);

/// Appends records to one WAL file through a POSIX fd (O_APPEND), so
/// the sync policy controls real fsync barriers. Not thread-safe; the
/// DurabilityManager serializes appends with its LSN assignment.
class WalWriter {
 public:
  struct Options {
    WalSyncPolicy sync = WalSyncPolicy::kAlways;
    /// kInterval: fsync every this-many appends.
    std::size_t sync_interval_ops = 64;
  };

  WalWriter() = default;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Opens `path` for appending, creating it (with magic) when absent.
  /// `good_bytes` is ScanWal's verified prefix length for an existing
  /// file — anything after it is a torn tail and is truncated away
  /// before the first append; pass 0 for a fresh file.
  static Result<WalWriter> Open(const std::string& path, Options options,
                                std::uint64_t good_bytes);

  /// Appends the record for (`lsn`, `request`) and applies the sync
  /// policy. Returns the record's encoded size in bytes.
  Result<std::uint64_t> Append(std::uint64_t lsn,
                               const DmlRequest& request);

  /// Forces an fsync regardless of policy.
  Status Sync();

  /// Discards every record (the file becomes just the magic) — called
  /// after a snapshot made them redundant.
  Status TruncateAll();

  /// Current file size in bytes.
  std::uint64_t size_bytes() const { return size_bytes_; }
  /// fsyncs issued so far (policy-driven and explicit).
  std::uint64_t syncs() const { return syncs_; }

 private:
  int fd_ = -1;
  Options options_;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
};

}  // namespace knnq::durability

#endif  // KNNQ_SRC_DURABILITY_WAL_H_
