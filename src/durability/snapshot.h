// Point-in-time snapshots: a full image of every relation at one LSN,
// written atomically so recovery always finds either the previous
// snapshot or the new one — never half of one.
//
// File layout: an 8-byte magic ("KNNQSNP1"), a body, then u32
// crc32(body):
//
//   body = u64 lsn | u32 relation_count, then per relation
//     str name | u8 index_type | i64 next_id | u64 last_lsn |
//     u64 point_count | point_count * (i64 id, f64 x, f64 y)
//
// WriteSnapshot builds the file at `path + ".tmp"`, fsyncs it, then
// rename(2)s it over `path` (atomic on POSIX) and fsyncs the parent
// directory so the rename itself survives a crash. A snapshot at LSN
// N makes every WAL record with LSN <= N redundant; the
// DurabilityManager cuts snapshots under commit quiesce, so N is the
// log's tail and the whole WAL truncates.

#ifndef KNNQ_SRC_DURABILITY_SNAPSHOT_H_
#define KNNQ_SRC_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/point.h"
#include "src/common/status.h"
#include "src/index/spatial_index.h"

namespace knnq::durability {

inline constexpr std::string_view kSnapshotMagic = "KNNQSNP1";

/// One relation's image: everything needed to rebuild it exactly —
/// contents, structure type, id sequence, and the LSN it reflects.
struct SnapshotRelation {
  std::string name;
  IndexType type = IndexType::kGrid;
  PointId next_id = 0;
  std::uint64_t last_lsn = 0;
  PointSet points;
};

/// The whole catalog at one instant.
struct SnapshotImage {
  /// Every WAL record with LSN <= this is reflected in the image.
  std::uint64_t lsn = 0;
  std::vector<SnapshotRelation> relations;
};

/// Atomically (temp file + rename + directory fsync) replaces `path`
/// with the encoding of `image`.
Status WriteSnapshot(const std::string& path, const SnapshotImage& image);

/// Reads and verifies a snapshot. Unlike the WAL there is no salvage
/// for a torn snapshot — the atomic write protocol means one should
/// never exist — so any mismatch (magic, CRC, undecodable body) is an
/// error naming the file.
Result<SnapshotImage> ReadSnapshot(const std::string& path);

}  // namespace knnq::durability

#endif  // KNNQ_SRC_DURABILITY_SNAPSHOT_H_
