#include "src/durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/data/dataset_io.h"
#include "src/durability/codec.h"

namespace knnq::durability {

std::uint32_t Crc32(const void* data, std::size_t size) {
  // Table-driven reflected CRC-32; the table is built once.
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text) {
  if (text == "always") return WalSyncPolicy::kAlways;
  if (text == "interval") return WalSyncPolicy::kInterval;
  if (text == "none") return WalSyncPolicy::kNone;
  return Status::InvalidArgument("unknown --wal-sync policy '" +
                                 std::string(text) +
                                 "' (want always, interval or none)");
}

const char* ToString(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kAlways:
      return "always";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

namespace {

constexpr std::uint8_t kKindMutate = 0;
constexpr std::uint8_t kKindLoad = 1;
constexpr std::uint8_t kOpInsert = 0;
constexpr std::uint8_t kOpErase = 1;

std::string EncodeBody(std::uint64_t lsn, const DmlRequest& request) {
  ByteWriter body;
  body.U64(lsn);
  if (request.kind == DmlRequest::Kind::kMutate) {
    body.U8(kKindMutate);
    body.Str(request.relation);
    body.U32(static_cast<std::uint32_t>(request.ops.size()));
    for (const MutationOp& op : request.ops) {
      if (op.kind == MutationOp::Kind::kInsert) {
        body.U8(kOpInsert);
        body.I64(op.point.id);
        body.F64(op.point.x);
        body.F64(op.point.y);
      } else {
        body.U8(kOpErase);
        body.I64(op.erase_id);
      }
    }
  } else {
    body.U8(kKindLoad);
    body.Str(request.relation);
    body.U64(request.points.size());
    for (const Point& p : request.points) {
      body.I64(p.id);
      body.F64(p.x);
      body.F64(p.y);
    }
  }
  return body.Take();
}

/// Decodes one body. Returns false when the bytes do not parse (short
/// or trailing garbage) — the caller treats that like a CRC failure.
bool DecodeBody(std::string_view bytes, WalRecord* record) {
  ByteReader reader(bytes);
  std::uint8_t kind = 0;
  if (!reader.U64(&record->lsn) || !reader.U8(&kind) ||
      !reader.Str(&record->request.relation)) {
    return false;
  }
  if (kind == kKindMutate) {
    record->request.kind = DmlRequest::Kind::kMutate;
    std::uint32_t count = 0;
    if (!reader.U32(&count)) return false;
    record->request.ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint8_t op_kind = 0;
      if (!reader.U8(&op_kind)) return false;
      MutationOp op;
      if (op_kind == kOpInsert) {
        op.kind = MutationOp::Kind::kInsert;
        if (!reader.I64(&op.point.id) || !reader.F64(&op.point.x) ||
            !reader.F64(&op.point.y)) {
          return false;
        }
      } else if (op_kind == kOpErase) {
        op.kind = MutationOp::Kind::kErase;
        if (!reader.I64(&op.erase_id)) return false;
      } else {
        return false;
      }
      record->request.ops.push_back(op);
    }
  } else if (kind == kKindLoad) {
    record->request.kind = DmlRequest::Kind::kLoad;
    std::uint64_t count = 0;
    if (!reader.U64(&count)) return false;
    // Guard the reserve against a corrupt huge count: the per-point
    // reads below would fail the underrun check anyway, but only
    // after the allocation.
    if (count > bytes.size()) return false;
    record->request.points.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Point p;
      if (!reader.I64(&p.id) || !reader.F64(&p.x) || !reader.F64(&p.y)) {
        return false;
      }
      record->request.points.push_back(p);
    }
  } else {
    return false;
  }
  return reader.AtEnd();
}

std::string OffsetError(std::uint64_t offset, const std::string& what) {
  return "wal record at byte " + std::to_string(offset) + ": " + what;
}

}  // namespace

std::string EncodeWalRecord(std::uint64_t lsn, const DmlRequest& request) {
  const std::string body = EncodeBody(lsn, request);
  ByteWriter framed;
  framed.U32(static_cast<std::uint32_t>(body.size()));
  framed.U32(Crc32(body.data(), body.size()));
  std::string out = framed.Take();
  out += body;
  return out;
}

Result<WalScan> ScanWal(const std::string& path) {
  auto contents = ReadTextFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  if (data.size() < kWalMagic.size() ||
      std::string_view(data).substr(0, kWalMagic.size()) != kWalMagic) {
    return Status::ParseError("not a knnq WAL (bad magic): " + path);
  }

  WalScan scan;
  std::uint64_t offset = kWalMagic.size();
  scan.good_bytes = offset;
  while (offset < data.size()) {
    ByteReader header(std::string_view(data).substr(offset));
    std::uint32_t body_size = 0;
    std::uint32_t crc = 0;
    if (!header.U32(&body_size) || !header.U32(&crc) ||
        offset + 8 + body_size > data.size()) {
      scan.truncated = true;
      scan.tail_error = OffsetError(offset, "torn record (hit EOF)");
      break;
    }
    const std::string_view body =
        std::string_view(data).substr(offset + 8, body_size);
    if (Crc32(body.data(), body.size()) != crc) {
      scan.truncated = true;
      scan.tail_error = OffsetError(offset, "CRC mismatch");
      break;
    }
    WalRecord record;
    if (!DecodeBody(body, &record)) {
      scan.truncated = true;
      scan.tail_error = OffsetError(offset, "undecodable body");
      break;
    }
    if (record.lsn <= scan.last_lsn) {
      scan.truncated = true;
      scan.tail_error = OffsetError(
          offset, "LSN " + std::to_string(record.lsn) +
                      " not greater than predecessor " +
                      std::to_string(scan.last_lsn));
      break;
    }
    scan.last_lsn = record.lsn;
    offset += 8 + body_size;
    scan.good_bytes = offset;
    scan.records.push_back(std::move(record));
  }
  return scan;
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      size_bytes_(other.size_bytes_),
      appends_(other.appends_),
      syncs_(other.syncs_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    size_bytes_ = other.size_bytes_;
    appends_ = other.appends_;
    syncs_ = other.syncs_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

Status WriteFully(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("wal write: ") +
                             std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path, Options options,
                                  std::uint64_t good_bytes) {
  WalWriter writer;
  writer.options_ = options;
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("open wal " + path + ": " +
                           std::strerror(errno));
  }
  writer.fd_ = fd;
  if (good_bytes == 0) {
    // Fresh file (or a caller explicitly discarding everything).
    if (::ftruncate(fd, 0) != 0 ||
        !WriteFully(fd, kWalMagic.data(), kWalMagic.size()).ok() ||
        ::fsync(fd) != 0) {
      return Status::IoError("initialize wal " + path + ": " +
                             std::strerror(errno));
    }
    writer.size_bytes_ = kWalMagic.size();
  } else {
    // Drop the torn tail (if any) so the next append starts exactly
    // where the verified prefix ends.
    if (::ftruncate(fd, static_cast<off_t>(good_bytes)) != 0 ||
        ::fsync(fd) != 0) {
      return Status::IoError("truncate wal " + path + ": " +
                             std::strerror(errno));
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
      return Status::IoError("seek wal " + path + ": " +
                             std::strerror(errno));
    }
    writer.size_bytes_ = good_bytes;
  }
  return writer;
}

Result<std::uint64_t> WalWriter::Append(std::uint64_t lsn,
                                        const DmlRequest& request) {
  const std::string record = EncodeWalRecord(lsn, request);
  if (Status s = WriteFully(fd_, record.data(), record.size()); !s.ok()) {
    return s;
  }
  size_bytes_ += record.size();
  ++appends_;
  const bool want_sync =
      options_.sync == WalSyncPolicy::kAlways ||
      (options_.sync == WalSyncPolicy::kInterval &&
       options_.sync_interval_ops > 0 &&
       appends_ % options_.sync_interval_ops == 0);
  if (want_sync) {
    if (Status s = Sync(); !s.ok()) return s;
  }
  return static_cast<std::uint64_t>(record.size());
}

Status WalWriter::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(std::string("wal fsync: ") +
                           std::strerror(errno));
  }
  ++syncs_;
  return Status::Ok();
}

Status WalWriter::TruncateAll() {
  if (::ftruncate(fd_, static_cast<off_t>(kWalMagic.size())) != 0 ||
      ::fsync(fd_) != 0) {
    return Status::IoError(std::string("wal truncate: ") +
                           std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::IoError(std::string("wal seek: ") +
                           std::strerror(errno));
  }
  size_bytes_ = kWalMagic.size();
  return Status::Ok();
}

}  // namespace knnq::durability
