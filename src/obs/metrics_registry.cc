#include "src/obs/metrics_registry.h"

#include <bit>
#include <cctype>
#include <cmath>

#include "src/common/check.h"
#include "src/common/text_parse.h"

namespace knnq::obs {

void Histogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const auto ns = static_cast<std::uint64_t>(seconds * 1e9);
  const std::size_t bucket =
      std::min<std::size_t>(kBuckets - 1, std::bit_width(ns | 1) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
}

double Histogram::BucketUpperSeconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) + 1) * 1e-9;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.counts[i];
  }
  snap.sum_seconds =
      static_cast<double>(total_ns_.load(std::memory_order_relaxed)) / 1e9;
  return snap;
}

HistogramSummary Histogram::Summarize() const {
  const Snapshot snap = Snap();
  HistogramSummary summary;
  summary.count = snap.count;
  if (snap.count == 0) return summary;
  summary.mean_ms =
      snap.sum_seconds * 1e3 / static_cast<double>(snap.count);
  const auto percentile = [&](double p) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(snap.count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += snap.counts[i];
      if (seen >= rank) return BucketUpperSeconds(i) * 1e3;
    }
    return BucketUpperSeconds(kBuckets - 1) * 1e3;
  };
  summary.p50_ms = percentile(0.50);
  summary.p95_ms = percentile(0.95);
  summary.p99_ms = percentile(0.99);
  return summary;
}

std::string HistogramSummary::ToJson() const {
  return "{\"count\": " + std::to_string(count) +
         ", \"mean_ms\": " + FormatDouble(mean_ms) +
         ", \"p50_ms\": " + FormatDouble(p50_ms) +
         ", \"p95_ms\": " + FormatDouble(p95_ms) +
         ", \"p99_ms\": " + FormatDouble(p99_ms) + "}";
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

}  // namespace

void MetricsRegistry::Register(Entry entry) {
  KNNQ_CHECK(ValidMetricName(entry.name));
  if (entry.kind == Entry::Kind::kCounter) {
    KNNQ_CHECK(entry.name.ends_with("_total"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& existing : entries_) {
    KNNQ_CHECK(existing.name != entry.name);
  }
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::RegisterCounter(std::string name, std::string help,
                                      const Counter* counter) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.kind = Entry::Kind::kCounter;
  entry.counter = counter;
  Register(std::move(entry));
}

void MetricsRegistry::RegisterHistogram(std::string name, std::string help,
                                        const Histogram* histogram) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.kind = Entry::Kind::kHistogram;
  entry.histogram = histogram;
  Register(std::move(entry));
}

void MetricsRegistry::RegisterCallbackCounter(
    std::string name, std::string help, std::function<std::uint64_t()> fn) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.kind = Entry::Kind::kCounter;
  entry.counter_fn = std::move(fn);
  Register(std::move(entry));
}

void MetricsRegistry::RegisterCallbackGauge(std::string name,
                                            std::string help,
                                            std::function<double()> fn) {
  Entry entry;
  entry.name = std::move(name);
  entry.help = std::move(help);
  entry.kind = Entry::Kind::kGauge;
  entry.gauge_fn = std::move(fn);
  Register(std::move(entry));
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Entry& entry : entries_) {
    out += "# HELP " + entry.name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Entry::Kind::kCounter: {
        out += "# TYPE " + entry.name + " counter\n";
        const std::uint64_t value = entry.counter != nullptr
                                        ? entry.counter->Value()
                                        : entry.counter_fn();
        out += entry.name + " " + std::to_string(value) + "\n";
        break;
      }
      case Entry::Kind::kGauge: {
        out += "# TYPE " + entry.name + " gauge\n";
        out += entry.name + " " + FormatDouble(entry.gauge_fn()) + "\n";
        break;
      }
      case Entry::Kind::kHistogram: {
        out += "# TYPE " + entry.name + " histogram\n";
        const Histogram::Snapshot snap = entry.histogram->Snap();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          cumulative += snap.counts[i];
          out += entry.name + "_bucket{le=\"" +
                 FormatDouble(Histogram::BucketUpperSeconds(i)) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += entry.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(snap.count) + "\n";
        out += entry.name + "_sum " + FormatDouble(snap.sum_seconds) + "\n";
        out += entry.name + "_count " + std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace knnq::obs
