#include "src/obs/history.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/text_parse.h"

namespace knnq::obs {

MetricsHistory::MetricsHistory(HistoryOptions options)
    : options_(options) {
  options_.interval_ms = std::max(options_.interval_ms, 1);
  options_.capacity = std::max<std::size_t>(options_.capacity, 1);
  base_wall_ms_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  base_steady_ = std::chrono::steady_clock::now();
}

MetricsHistory::~MetricsHistory() { Stop(); }

void MetricsHistory::AddSource(std::string name,
                               std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  KNNQ_CHECK(size_ == 0);  // Sources are fixed once sampling began.
  for (const Source& source : sources_) {
    KNNQ_CHECK(source.name != name);
  }
  sources_.push_back({std::move(name), std::move(fn)});
  values_.emplace_back();
}

void MetricsHistory::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  // The t=0 sample: series answer non-empty to the very first scrape
  // instead of only after one full interval.
  SampleOnce();
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void MetricsHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    started_ = false;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  sampler_.join();
}

void MetricsHistory::SamplerLoop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.interval_ms),
                          [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void MetricsHistory::SampleOnce() {
  // Read every source OUTSIDE the ring mutex: a slow callback (an
  // engine stats snapshot) must not block a concurrent Snapshot().
  std::vector<Source> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources = sources_;
  }
  std::vector<double> row;
  row.reserve(sources.size());
  for (const Source& source : sources) {
    row.push_back(source.fn());
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - base_steady_)
          .count();
  const std::uint64_t t_ms =
      base_wall_ms_ + static_cast<std::uint64_t>(elapsed);

  std::lock_guard<std::mutex> lock(mu_);
  if (times_.empty()) {
    times_.assign(options_.capacity, 0);
    for (auto& ring : values_) ring.assign(options_.capacity, 0.0);
  }
  const std::size_t slot = (head_ + size_) % options_.capacity;
  times_[slot] = t_ms;
  for (std::size_t s = 0; s < row.size(); ++s) values_[s][slot] = row[s];
  if (size_ < options_.capacity) {
    ++size_;
  } else {
    head_ = (head_ + 1) % options_.capacity;  // Overwrote the oldest.
  }
}

HistorySnapshot MetricsHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistorySnapshot snap;
  snap.interval_ms = options_.interval_ms;
  snap.t_ms.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    snap.t_ms.push_back(times_[(head_ + i) % options_.capacity]);
  }
  snap.names.reserve(sources_.size());
  snap.values.reserve(sources_.size());
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    snap.names.push_back(sources_[s].name);
    std::vector<double> series;
    series.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      series.push_back(values_[s][(head_ + i) % options_.capacity]);
    }
    snap.values.push_back(std::move(series));
  }
  return snap;
}

std::string MetricsHistory::RenderJson() const {
  const HistorySnapshot snap = Snapshot();
  std::string out = "{\"interval_ms\": " +
                    std::to_string(snap.interval_ms) +
                    ", \"samples\": " + std::to_string(snap.t_ms.size()) +
                    ", \"t_ms\": [";
  for (std::size_t i = 0; i < snap.t_ms.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(snap.t_ms[i]);
  }
  out += "], \"series\": {";
  for (std::size_t s = 0; s < snap.names.size(); ++s) {
    if (s > 0) out += ", ";
    out += "\"" + snap.names[s] + "\": [";
    for (std::size_t i = 0; i < snap.values[s].size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatDouble(snap.values[s][i]);
    }
    out += "]";
  }
  out += "}}";
  return out;
}

std::size_t MetricsHistory::num_sources() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

}  // namespace knnq::obs
