#include "src/obs/trace.h"

#include <algorithm>
#include <string_view>

#include "src/common/check.h"
#include "src/common/text_parse.h"

namespace knnq::obs {

namespace {

thread_local TraceContext* g_current_trace = nullptr;

}  // namespace

TraceContext::TraceContext() : epoch_(std::chrono::steady_clock::now()) {
  root_.name = "statement";
  stack_.push_back(&root_);
}

std::uint64_t TraceContext::ElapsedNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Span* TraceContext::OpenSpan(std::string_view name) {
  KNNQ_CHECK(!stack_.empty());
  Span* parent = stack_.back();
  auto child = std::make_unique<Span>();
  child->name = std::string(name);
  child->start_ns = ElapsedNs();
  Span* raw = child.get();
  parent->children.push_back(std::move(child));
  stack_.push_back(raw);
  return raw;
}

void TraceContext::CloseSpan(Span* span) {
  KNNQ_CHECK(!stack_.empty() && stack_.back() == span);
  span->duration_ns = ElapsedNs() - span->start_ns;
  stack_.pop_back();
}

void TraceContext::AddCounter(Span* span, const char* name,
                              std::uint64_t value) {
  for (auto& [existing, total] : span->counters) {
    if (existing == name) {
      total += value;
      return;
    }
  }
  span->counters.emplace_back(name, value);
}

void TraceContext::AttachMeasured(std::string_view name,
                                  std::uint64_t duration_ns) {
  auto child = std::make_unique<Span>();
  child->name = std::string(name);
  child->start_ns = 0;
  child->duration_ns = duration_ns;
  // Pre-measured stages ran before this context's live children; keep
  // them in front so the rendering reads in execution order.
  const auto insert_at = std::find_if(
      root_.children.begin(), root_.children.end(),
      [](const std::unique_ptr<Span>& s) { return s->start_ns != 0; });
  root_.children.insert(insert_at, std::move(child));
}

void TraceContext::Finish() {
  KNNQ_CHECK(stack_.size() == 1 && stack_.back() == &root_);
  root_.duration_ns = ElapsedNs();
  stack_.clear();
}

TraceContext* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(TraceContext* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

TraceScope::~TraceScope() { g_current_trace = previous_; }

namespace {

void RenderTextInto(const Span& span, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(span.name);
  // Pad the name column so durations align within a level.
  const std::size_t name_column = 28;
  const std::size_t used =
      static_cast<std::size_t>(depth) * 2 + span.name.size();
  out->append(used < name_column ? name_column - used : 1, ' ');
  out->append(FormatDouble(span.wall_ms()));
  out->append("ms");
  for (const auto& [name, value] : span.counters) {
    out->append("  ");
    out->append(name);
    out->push_back('=');
    out->append(std::to_string(value));
  }
  out->push_back('\n');
  for (const auto& child : span.children) {
    RenderTextInto(*child, depth + 1, out);
  }
}

}  // namespace

std::string RenderText(const Span& span) {
  std::string out;
  RenderTextInto(span, 0, &out);
  return out;
}

std::string ToJson(const Span& span) {
  std::string out = "{\"name\": \"" + span.name + "\", \"wall_ms\": " +
                    FormatDouble(span.wall_ms());
  if (!span.counters.empty()) {
    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : span.counters) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + std::to_string(value);
    }
    out += "}";
  }
  out += ", \"children\": [";
  bool first = true;
  for (const auto& child : span.children) {
    if (!first) out += ", ";
    first = false;
    out += ToJson(*child);
  }
  out += "]}";
  return out;
}

std::uint64_t SumCounter(const Span& span, std::string_view counter) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : span.counters) {
    if (name == counter) total += value;
  }
  for (const auto& child : span.children) {
    total += SumCounter(*child, counter);
  }
  return total;
}

std::size_t CountSpans(const Span& span) {
  std::size_t total = 1;
  for (const auto& child : span.children) total += CountSpans(*child);
  return total;
}

}  // namespace knnq::obs
