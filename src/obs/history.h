// MetricsHistory: fixed-size ring-buffer time series over selected
// counters and gauges, so rate and saturation trends are visible from
// /statusz and the HISTORY admin verb without external tooling.
//
// Sources are registered as callbacks (the same closures the
// MetricsRegistry scrapes) before Start(); a background thread then
// samples every source once per interval into per-metric rings that
// share one timestamp ring. ~10 minutes of 1 s samples fit in the
// default capacity; older samples fall off the front. Snapshots are
// taken under the ring mutex, so every series in one snapshot has the
// same length and the same timestamps (consistency across series), and
// timestamps are strictly monotonic by construction (steady-clock
// offsets from a wall-clock base captured once).

#ifndef KNNQ_SRC_OBS_HISTORY_H_
#define KNNQ_SRC_OBS_HISTORY_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace knnq::obs {

struct HistoryOptions {
  /// Sampling period of the background thread. The CLI's
  /// --history-interval-ms.
  int interval_ms = 1000;

  /// Samples retained per series (ring capacity). 600 x 1 s = 10 min.
  std::size_t capacity = 600;
};

/// A consistent copy of every ring: timestamps are shared (sample i of
/// every series was taken at t_ms[i]), oldest first.
struct HistorySnapshot {
  int interval_ms = 0;
  /// Milliseconds since the Unix epoch, monotone non-decreasing.
  std::vector<std::uint64_t> t_ms;
  std::vector<std::string> names;
  /// values[s][i] pairs with t_ms[i]; every inner vector has
  /// t_ms.size() elements.
  std::vector<std::vector<double>> values;
};

class MetricsHistory {
 public:
  explicit MetricsHistory(HistoryOptions options = {});
  ~MetricsHistory();

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// Registers one sampled source. Must be called before Start();
  /// `fn` is invoked from the sampler thread and must be thread-safe.
  void AddSource(std::string name, std::function<double()> fn);

  /// Takes the t=0 sample immediately (so series are non-empty from
  /// the first scrape) and spawns the sampler thread. Idempotent.
  void Start();

  /// Stops and joins the sampler thread. Idempotent; the destructor
  /// calls it.
  void Stop();

  /// One synchronous sampling pass over every source - the sampler
  /// thread's body, exposed so tests can drive the rings directly.
  void SampleOnce();

  /// Consistent copy of every ring (see HistorySnapshot).
  HistorySnapshot Snapshot() const;

  /// The snapshot as JSON: `{"interval_ms": N, "samples": M,
  /// "t_ms": [...], "series": {"name": [...], ...}}`.
  std::string RenderJson() const;

  std::size_t num_sources() const;

 private:
  struct Source {
    std::string name;
    std::function<double()> fn;
  };

  void SamplerLoop();

  HistoryOptions options_;

  mutable std::mutex mu_;
  std::vector<Source> sources_;
  /// Ring state, guarded by mu_: head_ is the oldest sample's slot,
  /// size_ the live count. times_ and each values_[s] have capacity
  /// slots; values_[s] parallels sources_[s].
  std::vector<std::uint64_t> times_;
  std::vector<std::vector<double>> values_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;

  /// Wall-clock epoch of base_steady_, captured at construction;
  /// sample timestamps are base_wall_ms_ + steady elapsed, monotone
  /// even when the wall clock steps.
  std::uint64_t base_wall_ms_ = 0;
  std::chrono::steady_clock::time_point base_steady_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread sampler_;
};

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_HISTORY_H_
