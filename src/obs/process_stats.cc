#include "src/obs/process_stats.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

namespace knnq::obs {

double ProcessRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  unsigned long long total = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0.0;
  return static_cast<double>(resident) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
}

double ProcessOpenFds() {
  std::error_code ec;
  std::filesystem::directory_iterator it("/proc/self/fd", ec);
  if (ec) return 0.0;
  std::size_t count = 0;
  for (const auto& entry : it) {
    (void)entry;
    ++count;
  }
  // The iterator itself holds one fd while counting.
  return count > 0 ? static_cast<double>(count - 1) : 0.0;
}

double ProcessThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double threads = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long n = 0;
    if (std::sscanf(line, "Threads: %llu", &n) == 1) {
      threads = static_cast<double>(n);
      break;
    }
  }
  std::fclose(f);
  return threads;
}

namespace {

std::string Compiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

bool SimdCompiled() {
#if defined(KNNQ_ENABLE_SIMD)
  return true;
#else
  return false;
#endif
}

}  // namespace

std::string BuildInfoJson() {
  return std::string("{\"version\": \"") + kBuildVersion +
         "\", \"compiler\": \"" + Compiler() +
         "\", \"standard\": " + std::to_string(__cplusplus) +
         ", \"simd_compiled\": " + (SimdCompiled() ? "true" : "false") +
         "}";
}

std::string BuildInfoLine() {
  return std::string("knnq ") + kBuildVersion + " (" + Compiler() +
         ", C++" + (__cplusplus >= 202002L ? "20" : "17") + ", simd " +
         (SimdCompiled() ? "compiled" : "off") + ")";
}

}  // namespace knnq::obs
