// Process self-instrumentation for the observability plane: RSS, open
// file descriptors, thread count (from /proc on Linux; 0 where the
// proc filesystem is unavailable) and build information. Registered as
// callback gauges so both the METRICS verb and GET /metrics expose
// them; /statusz embeds BuildInfoJson().

#ifndef KNNQ_SRC_OBS_PROCESS_STATS_H_
#define KNNQ_SRC_OBS_PROCESS_STATS_H_

#include <string>

namespace knnq::obs {

/// The version the build info reports. Bumped with the PR stream.
inline constexpr const char* kBuildVersion = "0.10.0";

/// Resident set size in bytes (/proc/self/statm x page size).
double ProcessRssBytes();

/// Open file descriptors (/proc/self/fd entries).
double ProcessOpenFds();

/// OS threads in this process (/proc/self/status Threads:).
double ProcessThreadCount();

/// `{"version": ..., "compiler": ..., "standard": ..., "simd": ...}`.
std::string BuildInfoJson();

/// One-line build description for banners and HELP text, e.g.
/// "knnq 0.10.0 (gcc 13.2.0, C++20, simd on)".
std::string BuildInfoLine();

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_PROCESS_STATS_H_
