// Leveled structured JSONL diagnostics: one JSON object per line to
// stderr or a --log-file, e.g.
//
//   {"ts": "2026-08-08T12:34:56.789Z", "level": "warn",
//    "event": "slow_query", "query": "SELECT ...", "wall_ms": 12.7,
//    "stats": {...}, "trace": {...}}
//
// The slow-query log (QueryEngine, EngineOptions::slow_query_ms) and
// server lifecycle diagnostics both write here. Emission is one
// formatted write under a mutex, so concurrent writers never interleave
// bytes within a line.

#ifndef KNNQ_SRC_OBS_LOG_H_
#define KNNQ_SRC_OBS_LOG_H_

#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace knnq::obs {

/// JSON string escaping (quotes, backslash, control characters). Shared
/// by the logger and the server wire renderers.
std::string JsonEscape(std::string_view text);

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug"/"info"/"warn"/"error" (the --log-level flag values).
Result<LogLevel> ParseLogLevel(std::string_view text);
std::string_view LogLevelName(LogLevel level);

/// One key/value of a log line. The value is held as rendered JSON, so
/// a field can carry a string, a number, or a whole sub-object (the
/// slow-query log embeds ExecStats and span trees this way).
struct LogField {
  std::string_view key;
  std::string json;

  static LogField Str(std::string_view key, std::string_view value) {
    return {key, "\"" + JsonEscape(value) + "\""};
  }
  static LogField Num(std::string_view key, double value);
  static LogField Int(std::string_view key, std::uint64_t value) {
    return {key, std::to_string(value)};
  }
  /// `json` must be a valid JSON value; embedded verbatim.
  static LogField Raw(std::string_view key, std::string json) {
    return {key, std::move(json)};
  }
};

/// The process logger. Writes to stderr until OpenFile redirects it.
/// Below-threshold events cost one relaxed level check.
class Logger {
 public:
  static Logger& Global();

  void SetLevel(LogLevel level) { level_ = static_cast<int>(level); }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_;
  }

  /// Redirects output to `path` (append mode, line-buffered).
  Status OpenFile(const std::string& path);

  void Log(LogLevel level, std::string_view event,
           std::span<const LogField> fields);
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields) {
    Log(level, event,
        std::span<const LogField>(fields.begin(), fields.size()));
  }

  void Debug(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kDebug, event, fields);
  }
  void Info(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kInfo, event, fields);
  }
  void Warn(std::string_view event,
            std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kWarn, event, fields);
  }
  void Error(std::string_view event,
             std::initializer_list<LogField> fields = {}) {
    Log(LogLevel::kError, event, fields);
  }

  ~Logger();

 private:
  Logger() = default;

  std::mutex mu_;
  /// Null means stderr; owned otherwise.
  std::FILE* file_ = nullptr;
  /// kInfo by default; plain int so Enabled stays a single load.
  int level_ = static_cast<int>(LogLevel::kInfo);
};

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_LOG_H_
