#include "src/obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace knnq::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

/// Case-insensitive ASCII comparison for header names and tokens.
bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// End of the request head: "\r\n\r\n" (or a bare "\n\n" from sloppy
/// probes). Returns npos while incomplete; *head_len is the offset of
/// the first body byte when found.
std::size_t FindHeadEnd(const std::string& buffer, std::size_t* head_len) {
  if (const std::size_t p = buffer.find("\r\n\r\n");
      p != std::string::npos) {
    *head_len = p + 4;
    return p;
  }
  if (const std::size_t p = buffer.find("\n\n"); p != std::string::npos) {
    *head_len = p + 2;
    return p;
  }
  return std::string::npos;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) return Status::Internal("http server already started");
  }
  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  const auto fail = [this](Status status) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return status;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return fail(
        Status::IoError(std::string("socket: ") + std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail(
        Status::InvalidArgument("bad http address: " + options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(Status::IoError(
        "bind http " + options_.host + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno)));
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    return fail(
        Status::IoError(std::string("listen: ") + std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  if (!stop_requested_.exchange(true)) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  // Cut, not drained: a scrape is an idempotent read the client simply
  // retries, unlike an accepted KNNQL statement.
  for (const auto& conn : connections) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : connections) {
    conn->thread.join();
    ::close(conn->fd);
  }
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

std::size_t HttpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  std::size_t active = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

void HttpServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void HttpServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {.fd = listen_fd_, .events = POLLIN, .revents = 0};
  fds[1] = {.fd = stop_pipe_[0], .events = POLLIN, .revents = 0};
  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    const int ready = ::poll(fds, 2, 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ReapFinished();
    if (ready == 0) continue;
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.max_connections > 0 &&
        active_connections() >= options_.max_connections) {
      // Best effort and never blocking: shed the overload.
      const char refuse[] =
          "HTTP/1.1 503 Service Unavailable\r\n"
          "Content-Length: 0\r\nConnection: close\r\n\r\n";
      [[maybe_unused]] const ssize_t n = ::send(
          fd, refuse, sizeof(refuse) - 1, MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.write_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.write_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>(options_.write_timeout_ms % 1000) *
          1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void HttpServer::ConnectionLoop(Connection* conn) {
  std::string buffer;
  std::size_t served = 0;
  while (ServeOne(conn, &buffer)) {
    if (++served >= options_.max_keepalive_requests) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

bool HttpServer::ServeOne(Connection* conn, std::string* buffer) {
  // Read until the request head is complete, against one wall-clock
  // deadline for the WHOLE head: a peer that trickles a byte at a time
  // gets no fresh budget per byte.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.read_timeout_ms);
  std::size_t head_len = 0;
  while (FindHeadEnd(*buffer, &head_len) == std::string::npos) {
    if (buffer->size() > options_.max_request_bytes) {
      WriteResponse(conn->fd, HttpResponse{.status = 431, .body = ""},
                    /*keep_alive=*/false, /*head_only=*/false);
      return false;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count();
    if (options_.read_timeout_ms > 0 && remaining <= 0) {
      return false;  // Slow read: cut the connection, no response.
    }
    pollfd pfd{.fd = conn->fd, .events = POLLIN, .revents = 0};
    const int tick = options_.read_timeout_ms > 0
                         ? static_cast<int>(std::min<long long>(
                               remaining, 1000))
                         : 1000;
    const int ready = ::poll(&pfd, 1, tick);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;  // Deadline re-checked above.
    char chunk[8 * 1024];
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // EOF (client closed or our Stop).
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buffer->append(chunk, static_cast<std::size_t>(n));
  }
  // The in-loop check only sees incomplete heads; a complete oversized
  // head arriving in one read must be refused here.
  if (head_len > options_.max_request_bytes) {
    WriteResponse(conn->fd, HttpResponse{.status = 431, .body = ""},
                  /*keep_alive=*/false, /*head_only=*/false);
    return false;
  }

  const std::string head = buffer->substr(0, head_len);
  buffer->erase(0, head_len);

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t line_end = head.find('\n');
  std::string_view line(head.data(), line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(conn->fd,
                  HttpResponse{.status = 400, .body = "bad request\n"},
                  /*keep_alive=*/false, /*head_only=*/false);
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    requests_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(conn->fd, HttpResponse{.status = 505, .body = ""},
                  /*keep_alive=*/false, /*head_only=*/false);
    return false;
  }

  // Headers: only Connection and Content-Length matter to this plane.
  bool keep_alive = version == "HTTP/1.1";
  bool has_body = false;
  std::size_t pos = line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    std::string_view header(head.data() + pos, eol - pos);
    pos = eol + 1;
    header = TrimSpaces(header);
    if (header.empty()) break;
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = TrimSpaces(header.substr(0, colon));
    const std::string_view value = TrimSpaces(header.substr(colon + 1));
    if (IEquals(name, "connection")) {
      if (IEquals(value, "close")) keep_alive = false;
      if (IEquals(value, "keep-alive")) keep_alive = true;
    } else if (IEquals(name, "content-length")) {
      has_body = value != "0";
    } else if (IEquals(name, "transfer-encoding")) {
      has_body = true;
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (has_body) {
    // Request-line + header parse ONLY: a body would desync keep-alive
    // framing, so refuse and close instead of consuming it.
    WriteResponse(
        conn->fd,
        HttpResponse{.status = 400, .body = "request body not allowed\n"},
        /*keep_alive=*/false, /*head_only=*/false);
    return false;
  }
  const bool head_only = IEquals(method, "HEAD");
  if (!IEquals(method, "GET") && !head_only) {
    return WriteResponse(
               conn->fd,
               HttpResponse{.status = 405, .body = "GET only\n"},
               keep_alive, /*head_only=*/false) &&
           keep_alive;
  }

  // Exact-path dispatch, query string stripped.
  if (const std::size_t q = target.find('?');
      q != std::string_view::npos) {
    target = target.substr(0, q);
  }
  const auto it = handlers_.find(std::string(target));
  HttpResponse response =
      it != handlers_.end()
          ? it->second()
          : HttpResponse{.status = 404, .body = "not found\n"};
  return WriteResponse(conn->fd, response, keep_alive, head_only) &&
         keep_alive;
}

bool HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool keep_alive, bool head_only) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) +
         "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n"
                    : "Connection: close\r\n";
  out += "\r\n";
  if (!head_only) out += response.body;

  const bool bounded = options_.write_timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.write_timeout_ms);
  std::size_t sent = 0;
  while (sent < out.size()) {
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace knnq::obs
