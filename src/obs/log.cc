#include "src/obs/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "src/common/text_parse.h"

namespace knnq::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<LogLevel> ParseLogLevel(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  return Status::InvalidArgument(
      "log level must be debug, info, warn or error; got '" +
      std::string(text) + "'");
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogField LogField::Num(std::string_view key, double value) {
  return {key, FormatDouble(value)};
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

Logger::~Logger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Logger::OpenFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open log file: " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  return Status::Ok();
}

namespace {

/// "2026-08-08T12:34:56.789Z" — UTC wall-clock with milliseconds.
std::string IsoTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                utc.tm_hour, utc.tm_min, utc.tm_sec,
                static_cast<int>(ms));
  return buf;
}

}  // namespace

void Logger::Log(LogLevel level, std::string_view event,
                 std::span<const LogField> fields) {
  if (!Enabled(level)) return;
  std::string line = "{\"ts\": \"" + IsoTimestamp() + "\", \"level\": \"" +
                     std::string(LogLevelName(level)) +
                     "\", \"event\": \"" + JsonEscape(event) + "\"";
  for (const LogField& field : fields) {
    line += ", \"";
    line += JsonEscape(field.key);
    line += "\": ";
    line += field.json;
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* out = file_ != nullptr ? file_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace knnq::obs
