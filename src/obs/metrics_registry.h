// Generic process-wide metrics: counters, gauges, and log-bucketed
// latency histograms, registered by name and rendered in Prometheus
// text exposition format (the server's METRICS verb).
//
// Instruments are owned by their call sites (ServerMetrics members, a
// bench fixture, ...) and updated with lock-free relaxed atomics; a
// MetricsRegistry holds non-owning registrations plus callback metrics
// for snapshot-style sources (EngineStatsSnapshot, NeighborhoodCache
// stats) that are read at scrape time. Rendering iterates in
// registration order, so the exposition is stable scrape to scrape.

#ifndef KNNQ_SRC_OBS_METRICS_REGISTRY_H_
#define KNNQ_SRC_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace knnq::obs {

/// Monotone event counter. Relaxed atomics: totals are exact, but a
/// reader may observe counts mid-batch.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (set, not accumulated).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time percentile summary of a Histogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  /// `{"count": ..., "mean_ms": ..., "p50_ms": ..., ...}`.
  std::string ToJson() const;
};

/// Log-bucketed latency histogram: bucket i holds samples in
/// [2^i, 2^(i+1)) NANOSECONDS, so a 100ns cache-hit query and an
/// hour-long scan both land with <= 2x quantization error (the
/// microsecond-bucketed predecessor collapsed every sub-us sample into
/// bucket 0 and truncated its contribution to the mean to zero).
/// Record and Summarize are thread-safe (relaxed atomics; percentiles
/// are an instantaneous approximation, not a consistent snapshot).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Record(double seconds);

  /// Percentiles use each bucket's upper bound, biasing the estimate
  /// conservatively (reported latency >= true latency).
  HistogramSummary Summarize() const;

  /// Bucket upper bound in seconds: 2^(i+1) nanoseconds.
  static double BucketUpperSeconds(std::size_t i);

  /// Raw cumulative state for exposition: per-bucket counts, total
  /// count, and the sum of samples in seconds.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
  };
  Snapshot Snap() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> total_ns_{0};
};

/// Non-owning name -> instrument registry with Prometheus rendering.
/// Registration normally happens once at startup; it is mutex-guarded
/// anyway so tests may register concurrently. Registered pointers must
/// outlive the registry. Names must match
/// [a-zA-Z_:][a-zA-Z0-9_:]* and counter names must end in "_total"
/// (both checked).
class MetricsRegistry {
 public:
  void RegisterCounter(std::string name, std::string help,
                       const Counter* counter);
  void RegisterHistogram(std::string name, std::string help,
                         const Histogram* histogram);
  /// Callback metrics sample snapshot-style sources at scrape time.
  void RegisterCallbackCounter(std::string name, std::string help,
                               std::function<std::uint64_t()> fn);
  void RegisterCallbackGauge(std::string name, std::string help,
                             std::function<double()> fn);

  /// The full Prometheus text exposition: for each metric a # HELP and
  /// # TYPE line then its samples, in registration order.
  std::string RenderPrometheus() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    const Counter* counter = nullptr;
    const Histogram* histogram = nullptr;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };

  void Register(Entry entry);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_METRICS_REGISTRY_H_
