// Structured per-query tracing: a tree of named, timed spans with
// attached counters, surfaced by KNNQL's EXPLAIN ANALYZE.
//
// The design optimizes for the common case — tracing OFF. A trace is
// installed for the current thread with TraceScope (RAII); every
// instrumentation site is a ScopedSpan whose constructor is one
// thread_local load plus a null check when no trace is installed: no
// allocation, no clock read, no branch into cold code. Counter
// attachment (ScopedSpan::Count) is the same null check. The bench gate
// (tools/check_bench.py, trace_hook_overhead) holds this path to under
// 2% of query time.
//
// A TraceContext is single-threaded by construction: one query's
// evaluation runs on one thread, and the context is installed on
// exactly that thread for the duration of the run. No locking.
//
// Counter discipline (the EXPLAIN ANALYZE acceptance invariant): spans
// carry counters named after ExecStats fields, attached only at
// evaluator phase granularity (src/core/phase_trace.h), so summing a
// counter over the whole tree reproduces the query's ExecStats total.
// Structural spans (parse, plan, execute, ...) carry timing only.

#ifndef KNNQ_SRC_OBS_TRACE_H_
#define KNNQ_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace knnq::obs {

/// One node of the span tree. Times are nanoseconds relative to the
/// owning TraceContext's epoch (its construction instant).
struct Span {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// (name, value) pairs; names follow ExecStats field names so tree
  /// sums line up with the flat counters. Order of attachment.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::unique_ptr<Span>> children;

  double wall_ms() const { return static_cast<double>(duration_ns) / 1e6; }
};

/// The trace of one statement: a root span ("statement") plus the open
/// span stack. Created by the engine when a statement is sampled or
/// EXPLAIN ANALYZE'd; owned via shared_ptr on EngineResult.
class TraceContext {
 public:
  TraceContext();

  /// Opens a child of the innermost open span and returns it.
  Span* OpenSpan(std::string_view name);

  /// Closes `span` (must be the innermost open span), stamping its
  /// duration.
  void CloseSpan(Span* span);

  /// Attaches a counter to `span`, merging into an existing entry of
  /// the same name (a phase that runs twice under one span adds up).
  void AddCounter(Span* span, const char* name, std::uint64_t value);

  /// Grafts a pre-measured child onto the root — for stages that ran
  /// before the context existed (the parse of the statement text).
  /// Pre-measured children are stamped before the root's live children.
  void AttachMeasured(std::string_view name, std::uint64_t duration_ns);

  /// Closes the root span. Call once, after the traced work.
  void Finish();

  /// Nanoseconds since the context's epoch.
  std::uint64_t ElapsedNs() const;

  const Span& root() const { return root_; }
  Span& mutable_root() { return root_; }

 private:
  std::chrono::steady_clock::time_point epoch_;
  Span root_;
  /// Innermost-last open spans; root_ is always stack_[0] until Finish.
  std::vector<Span*> stack_;
};

/// The trace installed for the current thread, or nullptr. This load is
/// all a disabled instrumentation site pays.
TraceContext* CurrentTrace();

/// Installs `trace` as the current thread's trace for this scope,
/// restoring the previous value (usually nullptr) on exit.
class TraceScope {
 public:
  explicit TraceScope(TraceContext* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* previous_;
};

/// RAII span over the current thread's trace. A no-op (null check, no
/// allocation) when tracing is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : trace_(CurrentTrace()) {
    if (trace_ != nullptr) span_ = trace_->OpenSpan(name);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->CloseSpan(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches (or accumulates) a counter on this span. Zero values are
  /// dropped so skipped work does not clutter the tree.
  void Count(const char* name, std::uint64_t value) {
    if (trace_ != nullptr && value != 0) {
      trace_->AddCounter(span_, name, value);
    }
  }

  /// True when a trace is installed (the span is recording).
  bool active() const { return trace_ != nullptr; }

 private:
  TraceContext* trace_;
  Span* span_ = nullptr;
};

/// Indented text rendering of the finished trace, one span per line:
/// "  execute ........ 1.82ms  blocks_scanned=120 cache_hits=3".
std::string RenderText(const Span& span);

/// JSON object: {"name": .., "wall_ms": .., "counters": {..},
/// "children": [..]}. "counters" is omitted when empty. Numbers use
/// FormatDouble, so the CLI and the wire render identical bytes.
std::string ToJson(const Span& span);

/// Sums `counter` over `span` and all descendants — the EXPLAIN
/// ANALYZE acceptance check (tree sums == ExecStats totals).
std::uint64_t SumCounter(const Span& span, std::string_view counter);

/// Total spans in the tree rooted at `span` (the root included).
std::size_t CountSpans(const Span& span);

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_TRACE_H_
