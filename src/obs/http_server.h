// HttpServer: the minimal dependency-free HTTP/1.1 endpoint behind the
// observability plane (GET /metrics, /healthz, /readyz, /statusz).
//
// Deliberately not a web server: GET/HEAD only, request-line + header
// parsing only (a body is refused), exact-path handlers, keep-alive
// with strict wall-clock timeouts on both the read of a request head
// and the write of a response. Architecture mirrors the KNNQL server:
// one accept thread, one short-lived thread per connection, a
// self-pipe to wake the accept loop on Stop, and a bounded connection
// count (beyond it, accepts are answered 503 and closed) so a scrape
// storm cannot starve the serving plane.
//
// Lives in obs (depends only on common): handlers are closures, so the
// owning server wires /metrics to its registry without this layer
// knowing what a registry is.

#ifndef KNNQ_SRC_OBS_HTTP_SERVER_H_
#define KNNQ_SRC_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace knnq::obs {

struct HttpServerOptions {
  /// Listen address; defaults to loopback like the KNNQL plane.
  std::string host = "127.0.0.1";

  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;

  /// Concurrently open scrape connections; beyond it an accept is
  /// answered with a minimal 503 and closed. 0 means unlimited.
  std::size_t max_connections = 32;

  /// Wall-clock budget for receiving one COMPLETE request head. A
  /// peer that trickles bytes (or sends none) is cut when it expires,
  /// so a stalled scraper cannot pin a connection slot.
  int read_timeout_ms = 5000;

  /// Wall-clock budget for writing one response (SO_SNDTIMEO bounds
  /// each send so the deadline is actually checked).
  int write_timeout_ms = 5000;

  /// Longest request head accepted; beyond it the connection is
  /// answered 431 and closed.
  std::size_t max_request_bytes = 16 * 1024;

  /// Requests served over one keep-alive connection before the server
  /// closes it (bounds how long a scraper may camp on a slot).
  std::size_t max_keepalive_requests = 1000;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  /// Handles one GET (the path already matched; query string, if any,
  /// was stripped). Runs on a connection thread; must be thread-safe.
  using Handler = std::function<HttpResponse()>;

  explicit HttpServer(HttpServerOptions options);

  /// Stops if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers the handler for an exact path ("/metrics"). Call before
  /// Start.
  void AddHandler(std::string path, Handler handler);

  /// Binds, listens and spawns the accept thread.
  Status Start();

  /// Closes the listener, cuts open connections and joins everything.
  /// Scrapes are idempotent reads, so unlike the KNNQL plane there is
  /// no drain: a response racing Stop is simply cut short. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with options.port = 0.
  std::uint16_t port() const { return port_; }

  std::size_t active_connections() const;

  /// Requests answered (any status) since Start - the
  /// knnq_http_requests_total source.
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);

  /// One request-response exchange. Returns false when the connection
  /// must close (error, timeout, Connection: close).
  bool ServeOne(Connection* conn, std::string* buffer);

  bool WriteResponse(int fd, const HttpResponse& response,
                     bool keep_alive, bool head_only);
  /// Joins and erases finished connections (accept-thread only).
  void ReapFinished();

  HttpServerOptions options_;
  std::map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  /// Self-pipe waking the accept loop on Stop.
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<std::uint64_t> requests_{0};

  mutable std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace knnq::obs

#endif  // KNNQ_SRC_OBS_HTTP_SERVER_H_
