#include "src/data/berlinmod.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/random.h"

namespace knnq {

namespace {

/// A population center of the synthetic city.
struct District {
  Point center;
  double weight;
  double radius;
};

/// Walks a polyline to the position at fraction `t` (in [0, 1]) of its
/// total length. Returns the first vertex for degenerate polylines.
Point WalkPolyline(const std::vector<Point>& waypoints, double t) {
  double total = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    total += Distance(waypoints[i - 1], waypoints[i]);
  }
  if (total <= 0.0 || waypoints.empty()) {
    return waypoints.empty() ? Point{} : waypoints.front();
  }
  double remaining = t * total;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const double seg = Distance(waypoints[i - 1], waypoints[i]);
    if (remaining <= seg && seg > 0.0) {
      const double frac = remaining / seg;
      return Point{.id = 0,
                   .x = waypoints[i - 1].x +
                        frac * (waypoints[i].x - waypoints[i - 1].x),
                   .y = waypoints[i - 1].y +
                        frac * (waypoints[i].y - waypoints[i - 1].y)};
    }
    remaining -= seg;
  }
  return waypoints.back();
}

/// The street network: jittered Manhattan grid plus a ring arterial.
class StreetNetwork {
 public:
  StreetNetwork(const BerlinModOptions& options, Rng& rng)
      : width_(options.width),
        height_(options.height),
        spacing_(options.street_spacing) {
    const auto cols =
        static_cast<std::size_t>(std::floor(width_ / spacing_)) + 1;
    const auto rows =
        static_cast<std::size_t>(std::floor(height_ / spacing_)) + 1;
    vertical_streets_.reserve(cols);
    for (std::size_t k = 0; k < cols; ++k) {
      const double jitter = rng.Uniform(-0.18, 0.18) * spacing_;
      vertical_streets_.push_back(std::clamp(
          static_cast<double>(k) * spacing_ + jitter, 0.0, width_));
    }
    horizontal_streets_.reserve(rows);
    for (std::size_t k = 0; k < rows; ++k) {
      const double jitter = rng.Uniform(-0.18, 0.18) * spacing_;
      horizontal_streets_.push_back(std::clamp(
          static_cast<double>(k) * spacing_ + jitter, 0.0, height_));
    }
    ring_center_ = Point{.id = 0, .x = width_ / 2, .y = height_ / 2};
    ring_rx_ = 0.33 * width_;
    ring_ry_ = 0.33 * height_;
  }

  /// Nearest vertical street to coordinate x.
  double SnapX(double x) const { return SnapTo(vertical_streets_, x); }
  /// Nearest horizontal street to coordinate y.
  double SnapY(double y) const { return SnapTo(horizontal_streets_, y); }

  /// Manhattan route along the street grid: home, a leg to home's
  /// horizontal street, along it to work's vertical street, down that
  /// street, and a final leg to work.
  std::vector<Point> GridRoute(const Point& home, const Point& work) const {
    const double street_y = SnapY(home.y);
    const double street_x = SnapX(work.x);
    return {
        home,
        Point{.id = 0, .x = home.x, .y = street_y},
        Point{.id = 0, .x = street_x, .y = street_y},
        Point{.id = 0, .x = street_x, .y = work.y},
        work,
    };
  }

  /// Arterial route: radial to the ring road, the shorter arc along the
  /// ring, then radial to the destination.
  std::vector<Point> RingRoute(const Point& home, const Point& work) const {
    const double theta_h = AngleOf(home);
    const double theta_w = AngleOf(work);
    double delta = theta_w - theta_h;
    while (delta > std::numbers::pi) delta -= 2 * std::numbers::pi;
    while (delta < -std::numbers::pi) delta += 2 * std::numbers::pi;

    std::vector<Point> route;
    route.push_back(home);
    const int arc_steps =
        std::max(1, static_cast<int>(std::ceil(std::abs(delta) / 0.1)));
    for (int s = 0; s <= arc_steps; ++s) {
      const double theta =
          theta_h + delta * static_cast<double>(s) /
                        static_cast<double>(arc_steps);
      route.push_back(RingPoint(theta));
    }
    route.push_back(work);
    return route;
  }

 private:
  static double SnapTo(const std::vector<double>& streets, double v) {
    const auto it = std::lower_bound(streets.begin(), streets.end(), v);
    if (it == streets.begin()) return streets.front();
    if (it == streets.end()) return streets.back();
    const double above = *it;
    const double below = *(it - 1);
    return (v - below) < (above - v) ? below : above;
  }

  double AngleOf(const Point& p) const {
    return std::atan2(p.y - ring_center_.y, p.x - ring_center_.x);
  }

  Point RingPoint(double theta) const {
    return Point{.id = 0,
                 .x = ring_center_.x + ring_rx_ * std::cos(theta),
                 .y = ring_center_.y + ring_ry_ * std::sin(theta)};
  }

  double width_;
  double height_;
  double spacing_;
  std::vector<double> vertical_streets_;
  std::vector<double> horizontal_streets_;
  Point ring_center_;
  double ring_rx_;
  double ring_ry_;
};

}  // namespace

Result<PointSet> GenerateBerlinModSnapshot(const BerlinModOptions& options) {
  if (options.width <= 0.0 || options.height <= 0.0) {
    return Status::InvalidArgument("map extent must be positive");
  }
  if (options.num_districts == 0) {
    return Status::InvalidArgument("num_districts must be > 0");
  }
  if (options.street_spacing <= 0.0) {
    return Status::InvalidArgument("street_spacing must be positive");
  }
  for (const double frac :
       {options.arterial_fraction, options.offroad_fraction}) {
    if (frac < 0.0 || frac > 1.0) {
      return Status::InvalidArgument("fractions must be within [0, 1]");
    }
  }

  Rng rng(options.seed);
  const StreetNetwork network(options, rng);
  const Point map_center{.id = 0,
                         .x = options.width / 2,
                         .y = options.height / 2};
  const double diag = std::hypot(options.width, options.height);

  // Districts: the CBD sits at the center; the rest scatter around it
  // with population decaying by distance from the center.
  std::vector<District> districts;
  districts.push_back(District{.center = map_center,
                               .weight = 2.0,
                               .radius = 0.08 * diag});
  for (std::size_t d = 1; d < options.num_districts; ++d) {
    Point c{.id = 0,
            .x = std::clamp(rng.Gaussian(map_center.x, options.width / 4.5),
                            0.0, options.width),
            .y = std::clamp(rng.Gaussian(map_center.y, options.height / 4.5),
                            0.0, options.height)};
    const double dist_ratio = Distance(c, map_center) / (0.5 * diag);
    districts.push_back(
        District{.center = c,
                 .weight = std::exp(-1.2 * dist_ratio) *
                           rng.Uniform(0.5, 1.5),
                 .radius = rng.Uniform(0.03, 0.07) * diag});
  }
  std::vector<double> home_weights;
  std::vector<double> work_weights;
  for (const District& d : districts) {
    home_weights.push_back(d.weight);
    // Work places concentrate in the core: square the decay.
    work_weights.push_back(d.weight * d.weight);
  }

  const auto sample_in_district = [&](const District& d) {
    return Point{
        .id = 0,
        .x = std::clamp(rng.Gaussian(d.center.x, d.radius), 0.0,
                        options.width),
        .y = std::clamp(rng.Gaussian(d.center.y, d.radius), 0.0,
                        options.height)};
  };

  PointSet points;
  points.reserve(options.num_points);
  PointId next_id = options.first_id;
  while (points.size() < options.num_points) {
    Point pos;
    if (rng.Bernoulli(options.offroad_fraction)) {
      pos = Point{.id = 0,
                  .x = rng.Uniform(0.0, options.width),
                  .y = rng.Uniform(0.0, options.height)};
    } else {
      const Point home =
          sample_in_district(districts[rng.WeightedIndex(home_weights)]);
      const Point work =
          sample_in_district(districts[rng.WeightedIndex(work_weights)]);
      const std::vector<Point> route =
          rng.Bernoulli(options.arterial_fraction)
              ? network.RingRoute(home, work)
              : network.GridRoute(home, work);
      pos = WalkPolyline(route, rng.NextDouble());
    }
    pos.x = std::clamp(pos.x + rng.Gaussian(0.0, options.gps_noise), 0.0,
                       options.width);
    pos.y = std::clamp(pos.y + rng.Gaussian(0.0, options.gps_noise), 0.0,
                       options.height);
    pos.id = next_id++;
    points.push_back(pos);
  }
  return points;
}

}  // namespace knnq
