#include "src/data/distribution_stats.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace knnq {

CoverageStats EstimateCoverage(const PointSet& points,
                               const BoundingBox& frame,
                               std::size_t cells_per_axis) {
  KNNQ_CHECK_MSG(cells_per_axis > 0, "cells_per_axis must be > 0");
  CoverageStats stats;
  if (frame.empty()) return stats;
  stats.total_cells = cells_per_axis * cells_per_axis;

  const double cell_w =
      std::max(frame.width(), 1e-12) / static_cast<double>(cells_per_axis);
  const double cell_h =
      std::max(frame.height(), 1e-12) / static_cast<double>(cells_per_axis);
  std::vector<bool> occupied(stats.total_cells, false);
  const auto clamp_cell = [&](double offset, double cell_size) {
    if (offset < 0.0) return std::size_t{0};
    const auto c = static_cast<std::size_t>(offset / cell_size);
    return std::min(c, cells_per_axis - 1);
  };
  for (const Point& p : points) {
    const std::size_t ci = clamp_cell(p.x - frame.min_x(), cell_w);
    const std::size_t cj = clamp_cell(p.y - frame.min_y(), cell_h);
    occupied[cj * cells_per_axis + ci] = true;
  }
  stats.occupied_cells = static_cast<std::size_t>(
      std::count(occupied.begin(), occupied.end(), true));
  return stats;
}

}  // namespace knnq
