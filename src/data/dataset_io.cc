#include "src/data/dataset_io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace knnq {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x4B4E4E5150545331ULL;  // "KNNQPTS1"

struct BinaryRecord {
  std::int64_t id;
  double x;
  double y;
};

}  // namespace

Status SaveCsv(const PointSet& points, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "id,x,y\n";
  char buf[128];
  for (const Point& p : points) {
    std::snprintf(buf, sizeof(buf), "%lld,%.17g,%.17g\n",
                  static_cast<long long>(p.id), p.x, p.y);
    out << buf;
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<PointSet> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  PointSet points;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) continue;  // Header.
    if (line.empty()) continue;
    long long id = 0;
    double x = 0.0, y = 0.0;
    if (std::sscanf(line.c_str(), "%lld,%lf,%lf", &id, &x, &y) != 3) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": malformed row '" << line << "'";
      return Status::IoError(msg.str());
    }
    points.push_back(Point{.id = id, .x = x, .y = y});
  }
  return points;
}

Status SaveBinary(const PointSet& points, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const std::uint64_t count = points.size();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic),
            sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Point& p : points) {
    const BinaryRecord rec{p.id, p.x, p.y};
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<PointSet> LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::uint64_t magic = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || magic != kBinaryMagic) {
    return Status::IoError("not a knnq binary dataset: " + path);
  }
  PointSet points;
  points.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    BinaryRecord rec;
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in.good()) {
      return Status::IoError("truncated binary dataset: " + path);
    }
    points.push_back(Point{.id = rec.id, .x = rec.x, .y = rec.y});
  }
  return points;
}

Result<PointSet> LoadPoints(const std::string& path) {
  const std::string suffix = ".bin";
  const bool binary = path.size() >= suffix.size() &&
                      path.compare(path.size() - suffix.size(),
                                   suffix.size(), suffix) == 0;
  return binary ? LoadBinary(path) : LoadCsv(path);
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

}  // namespace knnq
