#include "src/data/uniform.h"

#include "src/common/check.h"
#include "src/common/random.h"

namespace knnq {

PointSet GenerateUniform(std::size_t n, const BoundingBox& region,
                         std::uint64_t seed, PointId first_id) {
  KNNQ_CHECK_MSG(!region.empty(), "GenerateUniform requires a real region");
  Rng rng(seed);
  PointSet points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(Point{.id = first_id + static_cast<PointId>(i),
                           .x = rng.Uniform(region.min_x(), region.max_x()),
                           .y = rng.Uniform(region.min_y(), region.max_y())});
  }
  return points;
}

}  // namespace knnq
