// Dataset persistence: CSV for interchange/plotting, a raw binary format
// for fast reloads of the large benchmark relations.

#ifndef KNNQ_SRC_DATA_DATASET_IO_H_
#define KNNQ_SRC_DATA_DATASET_IO_H_

#include <string>

#include "src/common/point.h"
#include "src/common/status.h"

namespace knnq {

/// Writes "id,x,y" rows with a header line.
Status SaveCsv(const PointSet& points, const std::string& path);

/// Reads a file written by SaveCsv (or any id,x,y CSV with a header).
Result<PointSet> LoadCsv(const std::string& path);

/// Writes a compact binary image (magic, count, raw records).
Status SaveBinary(const PointSet& points, const std::string& path);

/// Reads a file written by SaveBinary; validates magic and size.
Result<PointSet> LoadBinary(const std::string& path);

/// Loads a dataset by extension: ".bin" via LoadBinary, anything else
/// via LoadCsv. The dispatch the CLI and KNNQL `LOAD` share.
Result<PointSet> LoadPoints(const std::string& path);

/// Reads a whole text file (e.g. a .knnql script) into a string.
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace knnq

#endif  // KNNQ_SRC_DATA_DATASET_IO_H_
