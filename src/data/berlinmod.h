// Synthetic BerlinMOD-style snapshots.
//
// The paper's datasets are snapshots of BerlinMOD [1, 3] (scale factor
// 1.0): positions of ~2,000 simulated Berlin vehicles with the time
// dimension removed, scaled from 32,000 to 2,560,000 points. BerlinMOD's
// generator (and its Secondo runtime) is not available offline, so this
// module rebuilds the part of it the experiments actually consume: a
// *static, city-shaped, street-aligned point distribution* of arbitrary
// cardinality, deterministic in a seed.
//
// The simulation, from scratch:
//   1. A street network over a ~30 km x 24 km extent: a jittered
//      Manhattan grid of side streets, a ring arterial (ellipse around
//      the center), and radial arterials connecting the ring to the
//      center - the classic Berlin layout.
//   2. Districts with population weights that decay away from the
//      center, so the core is dense and the periphery sparse.
//   3. Vehicles with a home (sampled from district population) and a
//      work place (biased toward the central business district). Each
//      vehicle drives a home -> work route: either a Manhattan route
//      along the street grid or, with `arterial_fraction` probability, a
//      detour over the ring road. Its reported position is a uniformly
//      random fraction along that route, plus GPS noise.
//
// Each generated point is one vehicle mid-trip; n points = n vehicle
// observations, matching how the paper flattens 28 days of trajectories
// into one relation. See DESIGN.md section 4 for the substitution
// rationale.

#ifndef KNNQ_SRC_DATA_BERLINMOD_H_
#define KNNQ_SRC_DATA_BERLINMOD_H_

#include <cstdint>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/common/status.h"

namespace knnq {

/// Parameters of the synthetic BerlinMOD-style snapshot generator.
struct BerlinModOptions {
  /// Number of vehicle observations (= points) to generate.
  std::size_t num_points = 100000;

  std::uint64_t seed = 42;

  /// Map extent in meters; defaults approximate Berlin.
  double width = 30000.0;
  double height = 24000.0;

  /// Number of districts (population centers).
  std::size_t num_districts = 12;

  /// Spacing of the side-street grid, meters.
  double street_spacing = 400.0;

  /// Standard deviation of GPS noise applied to every position, meters.
  double gps_noise = 15.0;

  /// Fraction of vehicles routed over the ring road instead of the
  /// street grid.
  double arterial_fraction = 0.25;

  /// Fraction of observations placed uniformly (parking lots, yards).
  double offroad_fraction = 0.03;

  /// Id of the first generated point.
  PointId first_id = 0;
};

/// Generates one snapshot. Fails on invalid options (zero districts,
/// non-positive extent, fractions outside [0, 1]).
Result<PointSet> GenerateBerlinModSnapshot(const BerlinModOptions& options);

}  // namespace knnq

#endif  // KNNQ_SRC_DATA_BERLINMOD_H_
