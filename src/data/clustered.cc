#include "src/data/clustered.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/random.h"

namespace knnq {

Result<PointSet> GenerateClusters(const ClusterOptions& options) {
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be > 0");
  }
  if (options.cluster_radius <= 0.0) {
    return Status::InvalidArgument("cluster_radius must be positive");
  }
  const double r = options.cluster_radius;
  const BoundingBox& region = options.region;
  if (region.width() < 2 * r || region.height() < 2 * r) {
    return Status::InvalidArgument(
        "region too small for even one cluster disk");
  }
  // Disks occupy pi r^2 each and cannot overlap; refuse plainly
  // impossible packings before rejection sampling spins.
  const double disk_area =
      std::numbers::pi * r * r * static_cast<double>(options.num_clusters);
  if (disk_area > 0.6 * region.Area()) {
    return Status::InvalidArgument(
        "cluster disks would exceed 60% of the region; rejection placement "
        "would be unreliable");
  }

  Rng rng(options.seed);
  std::vector<Point> centers;
  centers.reserve(options.num_clusters);
  const std::size_t max_attempts = 10000 * options.num_clusters;
  std::size_t attempts = 0;
  while (centers.size() < options.num_clusters) {
    if (++attempts > max_attempts) {
      return Status::Internal(
          "failed to place non-overlapping clusters; lower num_clusters or "
          "cluster_radius");
    }
    const Point c{.id = 0,
                  .x = rng.Uniform(region.min_x() + r, region.max_x() - r),
                  .y = rng.Uniform(region.min_y() + r, region.max_y() - r)};
    bool overlaps = false;
    for (const Point& other : centers) {
      if (SquaredDistance(c, other) < (2 * r) * (2 * r)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) centers.push_back(c);
  }

  PointSet points;
  points.reserve(options.num_clusters * options.points_per_cluster);
  PointId next_id = options.first_id;
  for (const Point& center : centers) {
    for (std::size_t i = 0; i < options.points_per_cluster; ++i) {
      // Uniform in the disk: radius ~ r*sqrt(U), angle uniform.
      const double rad = r * std::sqrt(rng.NextDouble());
      const double ang = rng.Uniform(0.0, 2.0 * std::numbers::pi);
      points.push_back(Point{.id = next_id++,
                             .x = center.x + rad * std::cos(ang),
                             .y = center.y + rad * std::sin(ang)});
    }
  }
  return points;
}

}  // namespace knnq
