// Distribution statistics driving the planner's heuristics.
//
// Section 4.1.2 chooses the unchained-join order by "cluster coverage":
// the relation whose clusters cover the smaller area should drive the
// first join. Coverage is estimated by rasterizing the relation onto a
// fixed probe grid over a common frame and counting occupied cells.

#ifndef KNNQ_SRC_DATA_DISTRIBUTION_STATS_H_
#define KNNQ_SRC_DATA_DISTRIBUTION_STATS_H_

#include <cstddef>

#include "src/common/bbox.h"
#include "src/common/point.h"

namespace knnq {

/// Occupancy of a relation over a probe grid.
struct CoverageStats {
  std::size_t occupied_cells = 0;
  std::size_t total_cells = 0;

  /// Fraction of probe cells containing at least one point; 0 for an
  /// empty frame.
  double coverage() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(occupied_cells) /
                     static_cast<double>(total_cells);
  }
};

/// Rasterizes `points` onto `cells_per_axis`^2 cells over `frame` and
/// counts occupied cells. Points outside the frame are clamped onto the
/// border cells. Two relations are comparable only when measured over
/// the same frame.
CoverageStats EstimateCoverage(const PointSet& points,
                               const BoundingBox& frame,
                               std::size_t cells_per_axis = 64);

}  // namespace knnq

#endif  // KNNQ_SRC_DATA_DISTRIBUTION_STATS_H_
