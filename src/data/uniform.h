// Uniformly distributed synthetic relations.

#ifndef KNNQ_SRC_DATA_UNIFORM_H_
#define KNNQ_SRC_DATA_UNIFORM_H_

#include <cstdint>

#include "src/common/bbox.h"
#include "src/common/point.h"

namespace knnq {

/// Returns `n` points uniform in `region` with ids [first_id,
/// first_id + n). Deterministic in `seed`.
PointSet GenerateUniform(std::size_t n, const BoundingBox& region,
                         std::uint64_t seed, PointId first_id = 0);

}  // namespace knnq

#endif  // KNNQ_SRC_DATA_UNIFORM_H_
