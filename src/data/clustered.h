// Clustered synthetic relations matching the paper's Section 6.2.1 setup:
// "All the clusters have the same number of points (4000), have the same
// area, and are non-overlapping."

#ifndef KNNQ_SRC_DATA_CLUSTERED_H_
#define KNNQ_SRC_DATA_CLUSTERED_H_

#include <cstdint>

#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/common/status.h"

namespace knnq {

/// Parameters of the equal-size, equal-area, non-overlapping cluster
/// generator.
struct ClusterOptions {
  std::size_t num_clusters = 10;

  /// Points in every cluster; the paper's experiments use 4000.
  std::size_t points_per_cluster = 4000;

  /// Radius of the disk each cluster's points are drawn from. All
  /// clusters share it, which makes their areas equal.
  double cluster_radius = 500.0;

  /// Region the cluster disks must fit inside.
  BoundingBox region = BoundingBox(0, 0, 30000, 24000);

  std::uint64_t seed = 1;

  /// Id of the first generated point.
  PointId first_id = 0;
};

/// Generates the clustered relation: centers are placed by rejection
/// sampling so disks never overlap, then each cluster draws
/// points_per_cluster points uniformly from its disk. Fails when the
/// requested disks cannot fit in the region (too many clusters or radius
/// too large).
Result<PointSet> GenerateClusters(const ClusterOptions& options);

}  // namespace knnq

#endif  // KNNQ_SRC_DATA_CLUSTERED_H_
