// Shared benchmark infrastructure.
//
// Every bench binary regenerates one figure of the paper's Section 6.
// Dataset sizes default to laptop-friendly scales that preserve the
// figures' shapes; set KNNQ_BENCH_SCALE=<int> to multiply all
// cardinalities toward the paper's 32k-2.56M range.
//
// Datasets and indexes are memoized per process so that repeated
// benchmark cases measure only query execution, not generation.

#ifndef KNNQ_BENCH_BENCH_COMMON_H_
#define KNNQ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "benchmark/benchmark.h"
#include "src/common/bbox.h"
#include "src/common/point.h"
#include "src/core/exec_stats.h"
#include "src/index/index_factory.h"
#include "src/index/spatial_index.h"

namespace knnq::bench {

/// KNNQ_BENCH_SCALE (>= 1); all cardinalities multiply by this.
std::size_t Scale();

/// The benchmark world: a Berlin-sized 30 km x 24 km extent.
BoundingBox Frame();

/// Memoized BerlinMOD-style snapshot of `n` points.
const PointSet& Berlin(std::size_t n, std::uint64_t seed = 1001,
                       PointId first_id = 0);

/// Memoized clustered relation (paper Section 6.2.1 setup: equal-size,
/// equal-area, non-overlapping clusters).
const PointSet& Clustered(std::size_t num_clusters,
                          std::size_t points_per_cluster,
                          std::uint64_t seed = 2002, PointId first_id = 0);

/// Memoized uniform relation over the frame.
const PointSet& Uniform(std::size_t n, std::uint64_t seed = 3003,
                        PointId first_id = 0);

/// Memoized index over a memoized point set (keyed by data identity and
/// index type).
const SpatialIndex& IndexOf(const PointSet& points,
                            IndexType type = IndexType::kGrid);

/// Folds a query's ExecStats into benchmark counters. Replaces the
/// ad-hoc per-bench stopwatch/counter plumbing: evaluators report the
/// uniform counters and their measured wall time directly.
void ReportExecStats(benchmark::State& state, const ExecStats& stats);

}  // namespace knnq::bench

#endif  // KNNQ_BENCH_BENCH_COMMON_H_
