// Sharded scale-out throughput: mixed-workload statement throughput
// at 4 concurrent query threads with a concurrent writer, at
// shards = 1 versus shards = 8.
//
// The single-shard engine serializes writers against readers on one
// shared_mutex, and glibc's reader-preferring rwlock admits new
// readers while a writer waits — under 4 threads of continuous query
// traffic the writer is starved nearly completely, so almost no DML
// commits while the engine serves. The sharded engine publishes
// writes copy-on-write: the writer clones only the touched shards,
// commits with a pointer swap, and never waits behind a query, so the
// same write stream flows at full rate while the readers run
// lock-free against pinned snapshots. The gated number is the
// mixed-workload throughput ratio
//
//   shard_speedup_t4 = [(queries + updates) / wall] at shards=8
//                    / [(queries + updates) / wall] at shards=1
//
// measured over a fixed read window: 4 threads each replay the
// six-shape query workload once while one writer applies mutation
// batches to the "clustered" relation for as long as the window lasts
// (budget-capped). Both sides offer the identical workload; what
// differs is how much of the write stream the engine admits.
// tools/check_bench.py requires >= 1.4x, a nonzero shards_pruned
// total (the scatter-gather bound must actually skip shards), and
// zero query/DML errors. Read-only rows at both shard counts are
// recorded for the cross-run normalized comparison; the mixed rows
// take the churn/ prefix, which check_bench.py excludes from
// row-by-row gating (their throughput mixes query and writer
// admission and is noisy run to run).
//
// Writes BENCH_engine_shards.json (override with KNNQ_BENCH_JSON).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/engine/query_engine.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kBatchSize = 264;  // 44 rounds x 6 shapes.
constexpr std::size_t kReaders = 4;
constexpr std::size_t kShardsHigh = 8;
constexpr std::size_t kOpsPerBatch = 16;
/// Writer budget cap: bounds the run even on a very fast machine.
constexpr std::size_t kMaxWriterBatches = 20000;

Catalog MakeCatalog() {
  Catalog catalog;
  const std::size_t n = 4000 * Scale();
  Status s = catalog.AddRelation("uniform",
                                 Uniform(n, /*seed=*/7001, /*first_id=*/0));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "city", Berlin(n, /*seed=*/7002, /*first_id=*/10000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "clustered",
      Clustered(8, n / 16, /*seed=*/7003, /*first_id=*/20000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  return catalog;
}

/// One round of the six query shapes parameterized by (dx, dy, k) —
/// the bench_engine_batch mix.
void AppendRound(std::vector<QuerySpec>& specs, double dx, double dy,
                 std::size_t k) {
  specs.push_back(TwoSelectsSpec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
      .s2 = {.focal = {.id = -1, .x = dx + 400, .y = dy + 300},
             .k = k + 8},
  });
  specs.push_back(SelectInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 4},
  });
  specs.push_back(SelectOuterJoinSpec{
      .outer = "city",
      .inner = "uniform",
      .join_k = 1 + k % 4,
      .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 8 + k},
  });
  specs.push_back(UnchainedJoinsSpec{
      .a = "uniform",
      .b = "city",
      .c = "clustered",
      .k_ab = 1 + k % 3,
      .k_cb = 1 + (k + 1) % 3,
  });
  specs.push_back(ChainedJoinsSpec{
      .a = "clustered",
      .b = "city",
      .c = "uniform",
      .k_ab = 1 + k % 3,
      .k_bc = 1 + (k + 2) % 3,
  });
  specs.push_back(RangeInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .range = BoundingBox(dx, dy, dx + 1500, dy + 1200),
  });
}

const std::vector<QuerySpec>& Specs() {
  static auto& specs = *new std::vector<QuerySpec>([] {
    std::vector<QuerySpec> s;
    s.reserve(kBatchSize);
    const BoundingBox frame = Frame();
    for (std::size_t i = 0; s.size() < kBatchSize; ++i) {
      AppendRound(s, frame.min_x() + static_cast<double>((i * 997) % 28000),
                  frame.min_y() + static_cast<double>((i * 613) % 22000),
                  1 + i % 8);
    }
    return s;
  }());
  return specs;
}

std::unique_ptr<QueryEngine> MakeEngine(std::size_t shards) {
  EngineOptions options;
  options.num_threads = kReaders;
  options.shards = shards;
  return std::make_unique<QueryEngine>(MakeCatalog(), options);
}

struct RunRecord {
  std::size_t shards = 1;
  double wall_seconds = 0.0;
  std::size_t queries = 0;
  std::size_t updates = 0;
  std::size_t errors = 0;
  std::size_t shards_pruned = 0;

  /// Statements (queries + committed updates) per second: the mixed
  /// throughput the summary ratio gates. Equals plain query
  /// throughput for the read-only rows.
  double qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(queries + updates) / wall_seconds
               : 0.0;
  }
};

std::map<std::string, RunRecord>& Records() {
  static auto& records = *new std::map<std::string, RunRecord>();
  return records;
}

/// The read window: kReaders threads each replay the workload once,
/// round-robin from staggered offsets. Returns the folded counts.
RunRecord DriveReaders(const QueryEngine& engine) {
  const std::vector<QuerySpec>& specs = Specs();
  std::mutex fold_mu;
  RunRecord folded;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      RunRecord local;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const EngineResult result =
            engine.Run(specs[(r * 67 + i) % specs.size()]);
        if (!result.ok()) ++local.errors;
        ++local.queries;
        local.shards_pruned += result.stats.shards_pruned;
      }
      std::lock_guard<std::mutex> lock(fold_mu);
      folded.queries += local.queries;
      folded.errors += local.errors;
      folded.shards_pruned += local.shards_pruned;
    });
  }
  for (std::thread& t : readers) t.join();
  return folded;
}

/// The write stream: deterministic insert/erase batches against
/// "clustered", applied until `stop` flips or the budget runs out.
/// Inserts and erases alternate once enough ids accumulate, keeping
/// the relation's cardinality bounded. `committed` counts ops whose
/// batch committed; `errors` counts failed batches.
void RunWriter(QueryEngine& engine, const std::atomic<bool>& stop,
               std::atomic<std::size_t>& committed,
               std::atomic<std::size_t>& errors) {
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  const auto next_rand = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 11;
  };
  PointId next_id = 50'000'000;
  std::vector<PointId> live;
  const BoundingBox frame = Frame();
  for (std::size_t b = 0;
       b < kMaxWriterBatches && !stop.load(std::memory_order_relaxed);
       ++b) {
    std::vector<MutationOp> ops;
    ops.reserve(kOpsPerBatch);
    for (std::size_t u = 0; u < kOpsPerBatch; ++u) {
      if (live.size() >= 256 && (live.size() + u) % 2 == 0) {
        const std::size_t victim = next_rand() % live.size();
        ops.push_back(MutationOp::Erase(live[victim]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        // next_rand() yields 53 bits; scaling by 2^-53 gives a
        // uniform [0,1) without the modulo bias (and low-value
        // clustering) of `% width`.
        const double x =
            frame.min_x() +
            frame.width() * static_cast<double>(next_rand()) *
                0x1.0p-53;
        const double y =
            frame.min_y() +
            frame.height() * static_cast<double>(next_rand()) *
                0x1.0p-53;
        ops.push_back(MutationOp::Insert(x, y, next_id));
        live.push_back(next_id++);
      }
    }
    const EngineResult applied =
        engine.ExecuteDml(DmlRequest::MutateOps("clustered", ops));
    if (applied.ok()) {
      committed.fetch_add(ops.size(), std::memory_order_relaxed);
    } else {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BM_ShardsReadOnly(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::unique_ptr<QueryEngine> engine = MakeEngine(shards);
  RunRecord record;
  record.shards = shards;
  for (auto _ : state) {
    Stopwatch timer;
    const RunRecord pass = DriveReaders(*engine);
    record.wall_seconds += timer.ElapsedSeconds();
    record.queries += pass.queries;
    record.errors += pass.errors;
    record.shards_pruned += pass.shards_pruned;
  }
  Records()["readonly/shards" + std::to_string(shards) + "/t4"] = record;
  state.counters["qps"] = record.qps();
  state.counters["shards_pruned"] =
      static_cast<double>(record.shards_pruned);
}

void BM_ShardsMixed(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  RunRecord record;
  record.shards = shards;
  for (auto _ : state) {
    // Fresh engine per iteration: the write stream mutates "clustered".
    std::unique_ptr<QueryEngine> engine = MakeEngine(shards);
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> committed{0};
    std::atomic<std::size_t> write_errors{0};
    Stopwatch timer;
    std::thread writer([&] {
      RunWriter(*engine, stop, committed, write_errors);
    });
    const RunRecord pass = DriveReaders(*engine);
    // The read window is the clock: updates count only if committed
    // before the last query finished.
    record.wall_seconds += timer.ElapsedSeconds();
    record.updates += committed.load(std::memory_order_relaxed);
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    record.queries += pass.queries;
    record.errors += pass.errors + write_errors.load();
    record.shards_pruned += pass.shards_pruned;
  }
  Records()["churn/mixed/shards" + std::to_string(shards) + "/t4"] = record;
  state.counters["qps"] = record.qps();
  state.counters["updates"] = static_cast<double>(record.updates);
  state.counters["errors"] = static_cast<double>(record.errors);
  state.counters["shards_pruned"] =
      static_cast<double>(record.shards_pruned);
}

BENCHMARK(BM_ShardsReadOnly)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(kShardsHigh);

BENCHMARK(BM_ShardsMixed)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(kShardsHigh);

}  // namespace

/// Writes the rows plus the gated summary ratios.
void WriteBenchJson() {
  const char* env = std::getenv("KNNQ_BENCH_JSON");
  const std::string path =
      env != nullptr ? env : "BENCH_engine_shards.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  std::fprintf(out, "{\n  \"bench\": \"shards\",\n");
  std::fprintf(out, "  \"scale\": %zu,\n", Scale());
  std::fprintf(out, "  \"reference\": \"readonly/shards1/t4\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  bool first = true;
  std::size_t total_errors = 0;
  std::size_t total_pruned = 0;
  for (const auto& [name, r] : Records()) {
    std::fprintf(
        out,
        "%s    {\"name\": \"%s\", \"shards\": %zu, \"wall_seconds\": "
        "%.6f, \"queries\": %zu, \"updates\": %zu, \"qps\": %.2f, "
        "\"errors\": %zu, \"shards_pruned\": %zu}",
        first ? "" : ",\n", name.c_str(), r.shards, r.wall_seconds,
        r.queries, r.updates, r.qps(), r.errors, r.shards_pruned);
    first = false;
    total_errors += r.errors;
    total_pruned += r.shards_pruned;
  }
  std::fprintf(out, "\n  ],\n");

  const auto qps_of = [](const std::string& name) {
    const auto it = Records().find(name);
    return it == Records().end() ? 0.0 : it->second.qps();
  };
  const double storm1 = qps_of("churn/mixed/shards1/t4");
  const double storm8 =
      qps_of("churn/mixed/shards" + std::to_string(kShardsHigh) + "/t4");
  const double speedup = storm1 > 0.0 ? storm8 / storm1 : 0.0;
  std::fprintf(out,
               "  \"summary\": {\"shard_speedup_t4\": %.3f, "
               "\"shards_pruned\": %zu, \"total_errors\": %zu}\n}\n",
               speedup, total_pruned, total_errors);
  std::fclose(out);
  std::printf("wrote %s (shard speedup t4=%.2fx, pruned=%zu, "
              "errors=%zu)\n",
              path.c_str(), speedup, total_pruned, total_errors);
}

}  // namespace knnq::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  knnq::bench::WriteBenchJson();
  return 0;
}
