// Ablation: Procedure 3's contour early-stop vs exhaustive
// preprocessing of the outer blocks. The contour rule should probe far
// fewer blocks while classifying the same Contributing set on
// city-shaped data (see DESIGN.md note 3 for the theoretical caveat).

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"

namespace knnq::bench {
namespace {

SelectInnerJoinQuery MakeQuery(std::size_t outer_n) {
  const PointSet& outer = Berlin(outer_n, /*seed=*/1011, /*first_id=*/0);
  const PointSet& inner =
      Berlin(128000 * Scale(), /*seed=*/1022, /*first_id=*/10000000);
  return SelectInnerJoinQuery{
      .outer = &IndexOf(outer),
      .inner = &IndexOf(inner),
      .join_k = 10,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = 10,
  };
}

void BM_AblationContour_Contour(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  SelectInnerJoinStats stats;
  for (auto _ : state) {
    stats = SelectInnerJoinStats{};
    auto result =
        SelectInnerJoinBlockMarking(query, PreprocessMode::kContour, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["blocks_probed"] =
      static_cast<double>(stats.blocks_preprocessed);
  state.counters["outer_blocks"] =
      static_cast<double>(query.outer->num_blocks());
}

void BM_AblationContour_Exhaustive(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  SelectInnerJoinStats stats;
  for (auto _ : state) {
    stats = SelectInnerJoinStats{};
    auto result = SelectInnerJoinBlockMarking(
        query, PreprocessMode::kExhaustive, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["blocks_probed"] =
      static_cast<double>(stats.blocks_preprocessed);
  state.counters["outer_blocks"] =
      static_cast<double>(query.outer->num_blocks());
}

BENCHMARK(BM_AblationContour_Contour)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->Arg(64000)
    ->Arg(256000);

BENCHMARK(BM_AblationContour_Exhaustive)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->Arg(64000)
    ->Arg(256000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
