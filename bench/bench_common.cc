#include "bench/bench_common.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <tuple>

#include "src/common/check.h"
#include "src/data/berlinmod.h"
#include "src/data/clustered.h"
#include "src/data/uniform.h"

namespace knnq::bench {

std::size_t Scale() {
  static const std::size_t scale = [] {
    const char* env = std::getenv("KNNQ_BENCH_SCALE");
    if (env == nullptr) return std::size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed >= 1 ? static_cast<std::size_t>(parsed) : std::size_t{1};
  }();
  return scale;
}

BoundingBox Frame() { return BoundingBox(0, 0, 30000, 24000); }

const PointSet& Berlin(std::size_t n, std::uint64_t seed,
                       PointId first_id) {
  using Key = std::tuple<std::size_t, std::uint64_t, PointId>;
  static auto& cache = *new std::map<Key, std::unique_ptr<PointSet>>();
  auto& slot = cache[{n, seed, first_id}];
  if (slot == nullptr) {
    BerlinModOptions options;
    options.num_points = n;
    options.seed = seed;
    options.first_id = first_id;
    auto points = GenerateBerlinModSnapshot(options);
    KNNQ_CHECK_MSG(points.ok(), points.status().ToString().c_str());
    slot = std::make_unique<PointSet>(std::move(points.value()));
  }
  return *slot;
}

const PointSet& Clustered(std::size_t num_clusters,
                          std::size_t points_per_cluster,
                          std::uint64_t seed, PointId first_id) {
  using Key = std::tuple<std::size_t, std::size_t, std::uint64_t, PointId>;
  static auto& cache = *new std::map<Key, std::unique_ptr<PointSet>>();
  auto& slot = cache[{num_clusters, points_per_cluster, seed, first_id}];
  if (slot == nullptr) {
    ClusterOptions options;
    options.num_clusters = num_clusters;
    options.points_per_cluster = points_per_cluster;
    options.cluster_radius = 800.0;
    options.region = Frame();
    options.seed = seed;
    options.first_id = first_id;
    auto points = GenerateClusters(options);
    KNNQ_CHECK_MSG(points.ok(), points.status().ToString().c_str());
    slot = std::make_unique<PointSet>(std::move(points.value()));
  }
  return *slot;
}

const PointSet& Uniform(std::size_t n, std::uint64_t seed,
                        PointId first_id) {
  using Key = std::tuple<std::size_t, std::uint64_t, PointId>;
  static auto& cache = *new std::map<Key, std::unique_ptr<PointSet>>();
  auto& slot = cache[{n, seed, first_id}];
  if (slot == nullptr) {
    slot = std::make_unique<PointSet>(
        GenerateUniform(n, Frame(), seed, first_id));
  }
  return *slot;
}

void ReportExecStats(benchmark::State& state, const ExecStats& stats) {
  state.counters["blocks_scanned"] =
      static_cast<double>(stats.blocks_scanned);
  state.counters["points_compared"] =
      static_cast<double>(stats.points_compared);
  state.counters["neighborhoods"] =
      static_cast<double>(stats.neighborhoods_computed);
  state.counters["pruned"] = static_cast<double>(stats.candidates_pruned);
  state.counters["exec_wall_ms"] = stats.wall_seconds * 1e3;
}

const SpatialIndex& IndexOf(const PointSet& points, IndexType type) {
  using Key = std::pair<const PointSet*, IndexType>;
  static auto& cache = *new std::map<Key, std::unique_ptr<SpatialIndex>>();
  auto& slot = cache[{&points, type}];
  if (slot == nullptr) {
    IndexOptions options;
    options.type = type;
    auto index = BuildIndex(points, options);
    KNNQ_CHECK_MSG(index.ok(), index.status().ToString().c_str());
    slot = std::move(index.value());
  }
  return *slot;
}

}  // namespace knnq::bench
