// Figure 22: two unchained kNN-joins (A JOIN B) INTERSECT_B (C JOIN B)
// with A clustered and B, C city-shaped; |C| varies.
//
// Paper shape: Block-Marking stays nearly flat (blocks of C that cannot
// reach the candidate region of B are pruned before their points are
// joined) while the conceptually correct QEP grows linearly with |C| -
// an order-of-magnitude gap.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/unchained_joins.h"

namespace knnq::bench {
namespace {

UnchainedJoinsQuery MakeQuery(std::size_t c_n) {
  // A: 5 tight clusters (the paper's Section 6.2.1 setup, cluster size
  // scaled down with everything else so the intersection result - and
  // with it both evaluators' output cost - stays proportional); B and C:
  // city snapshots.
  const PointSet& a = Clustered(2, 100 * Scale(), /*seed=*/411,
                                /*first_id=*/0);
  const PointSet& b =
      Berlin(128000 * Scale(), /*seed=*/422, /*first_id=*/10000000);
  const PointSet& c = Berlin(c_n, /*seed=*/433, /*first_id=*/20000000);
  return UnchainedJoinsQuery{
      .a = &IndexOf(a),
      .b = &IndexOf(b),
      .c = &IndexOf(c),
      .k_ab = 10,
      .k_cb = 10,
  };
}

void BM_Fig22_ConceptualQEP(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  std::size_t triplets = 0;
  for (auto _ : state) {
    auto result = UnchainedJoinsNaive(query);
    triplets = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["c_points"] = static_cast<double>(query.c->num_points());
  state.counters["triplets"] = static_cast<double>(triplets);
}

void BM_Fig22_BlockMarking(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  std::size_t triplets = 0;
  UnchainedJoinsStats stats;
  for (auto _ : state) {
    stats = UnchainedJoinsStats{};
    auto result = UnchainedJoinsBlockMarking(query, &stats);
    triplets = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["c_points"] = static_cast<double>(query.c->num_points());
  state.counters["triplets"] = static_cast<double>(triplets);
  state.counters["c_points_joined"] =
      static_cast<double>(stats.neighborhoods_computed);
}

BENCHMARK(BM_Fig22_ConceptualQEP)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

BENCHMARK(BM_Fig22_BlockMarking)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
