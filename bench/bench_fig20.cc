// Figure 20: Counting vs Block-Marking when the OUTER relation is
// small/low-density.
//
// Paper shape: Counting wins - Block-Marking's per-block preprocessing
// (a neighborhood per block center) does not pay off when few points
// share each block.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"

namespace knnq::bench {
namespace {

SelectInnerJoinQuery MakeQuery(std::size_t outer_n) {
  const PointSet& outer = Berlin(outer_n, /*seed=*/1212, /*first_id=*/0);
  const PointSet& inner =
      Berlin(128000 * Scale(), /*seed=*/2323, /*first_id=*/10000000);
  return SelectInnerJoinQuery{
      .outer = &IndexOf(outer),
      .inner = &IndexOf(inner),
      .join_k = 10,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = 10,
  };
}

void BM_Fig20_Counting(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  for (auto _ : state) {
    auto result = SelectInnerJoinCounting(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
}

void BM_Fig20_BlockMarking(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  for (auto _ : state) {
    auto result = SelectInnerJoinBlockMarking(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
}

BENCHMARK(BM_Fig20_Counting)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000);

BENCHMARK(BM_Fig20_BlockMarking)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
