// Per-kernel microbenchmarks for the point-scan hot path.
//
// Three layers of rows, coarse to fine:
//
//   kernel/*          raw 64k-point span: the scalar AoS scan the
//                     searcher used before the columnar refactor vs the
//                     batched SoA kernel (scalar and SIMD). This is the
//                     row pair check_bench.py gates: SoA+SIMD must beat
//                     the scalar AoS scan by >= 1.5x.
//   scan/<index>/*    the same distance work driven through a real
//                     index's blocks (BlockPoints AoS loop vs BlockSoA
//                     + kernel), per structure — measures the layout
//                     win with real span sizes and boundaries.
//   getknn/<index>    the full searcher (locality + bound-based block
//                     skipping + SIMD batches + arena top-k); rows
//                     carry the skip rate so the bound's effect is
//                     visible next to the raw scan rows.
//
// Writes BENCH_kernels.json (override with KNNQ_BENCH_JSON); gate with
//   tools/check_bench.py BENCH_kernels.json bench/baselines/BENCH_kernels.json

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"
#include "src/index/distance_kernel.h"
#include "src/index/knn_searcher.h"

namespace knnq::bench {
namespace {

/// The gated span size: large enough that the scan is memory/ALU bound,
/// small enough to stay cache-resident like a hot block span.
constexpr std::size_t kSpanPoints = 64 * 1024;
/// Points behind the per-structure rows.
constexpr std::size_t kIndexPoints = 64 * 1024;
/// Query points per timed pass of the scan/getknn rows.
constexpr std::size_t kQueries = 64;

struct Record {
  double wall_seconds = 0.0;
  std::size_t ops = 0;  // Timed passes over the span / query batch.
  /// getknn rows only: skip-rate bookkeeping from SearchStats.
  std::size_t blocks_scanned = 0;
  std::size_t blocks_skipped = 0;

  double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(ops) / wall_seconds
                              : 0.0;
  }
};

std::map<std::string, Record>& Records() {
  static auto* records = new std::map<std::string, Record>();
  return *records;
}

/// The raw span as parallel columns (and the same points as AoS).
struct RawSpan {
  std::vector<double> x, y;
  const PointSet* aos;
};

const RawSpan& Span() {
  static const RawSpan* span = [] {
    auto* s = new RawSpan();
    const PointSet& pts = Uniform(kSpanPoints);
    s->aos = &pts;
    s->x.reserve(pts.size());
    s->y.reserve(pts.size());
    for (const Point& p : pts) {
      s->x.push_back(p.x);
      s->y.push_back(p.y);
    }
    return s;
  }();
  return *span;
}

/// Query points spread over the frame, deterministic.
std::vector<Point> QueryPoints() {
  const PointSet& pts = Uniform(kQueries, /*seed=*/4004);
  return {pts.begin(), pts.end()};
}

// --- kernel/*: raw span rows. ----------------------------------------

/// The pre-refactor shape: iterate AoS records, one SquaredDistance per
/// point, running min. What NeighborhoodFromLocality did before the
/// columnar rewrite.
double AosScanMin(const PointSet& pts, const Point& q) {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : pts) {
    const double sq = SquaredDistance(p, q);
    best = sq < best ? sq : best;
  }
  return best;
}

void BM_KernelAos(benchmark::State& state) {
  const RawSpan& span = Span();
  const std::vector<Point> queries = QueryPoints();
  Record& r = Records()["kernel/aos/64k"];
  double sink = 0.0;
  std::size_t qi = 0;
  for (auto _ : state) {
    const Point& q = queries[qi++ % queries.size()];
    Stopwatch timer;
    sink += AosScanMin(*span.aos, q);
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_KernelAos);

/// The kernel itself (MinSquaredDistance over the columns), SIMD on or
/// off — the gated comparison against the AoS scan above.
void KernelSoa(benchmark::State& state, const std::string& row,
               bool simd) {
  const RawSpan& span = Span();
  const std::vector<Point> queries = QueryPoints();
  SetSimdEnabled(simd);
  Record& r = Records()[row];
  double sink = 0.0;
  std::size_t qi = 0;
  for (auto _ : state) {
    const Point& q = queries[qi++ % queries.size()];
    Stopwatch timer;
    sink += MinSquaredDistance(span.x.data(), span.y.data(),
                               span.x.size(), q.x, q.y);
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  SetSimdEnabled(true);
  benchmark::DoNotOptimize(sink);
}

void BM_KernelSoaScalar(benchmark::State& state) {
  KernelSoa(state, "kernel/soa_scalar/64k", /*simd=*/false);
}
BENCHMARK(BM_KernelSoaScalar);

void BM_KernelSoaSimd(benchmark::State& state) {
  KernelSoa(state, "kernel/soa_simd/64k", /*simd=*/true);
}
BENCHMARK(BM_KernelSoaSimd);

/// Info row (not gated): the searcher's batch-into-buffer shape —
/// SquaredDistanceBatch plus a serial consume of the outputs, which is
/// bounded by the consuming loop rather than the kernel.
void BM_KernelSoaBatch(benchmark::State& state) {
  const RawSpan& span = Span();
  const std::vector<Point> queries = QueryPoints();
  std::vector<double> buffer(span.x.size());
  Record& r = Records()["kernel/soa_batch_simd/64k"];
  double sink = 0.0;
  std::size_t qi = 0;
  for (auto _ : state) {
    const Point& q = queries[qi++ % queries.size()];
    Stopwatch timer;
    SquaredDistanceBatch(span.x.data(), span.y.data(), span.x.size(), q.x,
                         q.y, buffer.data());
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      best = buffer[i] < best ? buffer[i] : best;
    }
    sink += best;
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_KernelSoaBatch);

// --- scan/<index>/*: whole-index block scans. -------------------------

const SpatialIndex& IndexFor(IndexType type) {
  return IndexOf(Uniform(kIndexPoints), type);
}

void ScanAos(benchmark::State& state, IndexType type,
             const std::string& row) {
  const SpatialIndex& index = IndexFor(type);
  const std::vector<Point> queries = QueryPoints();
  Record& r = Records()[row];
  double sink = 0.0;
  for (auto _ : state) {
    Stopwatch timer;
    for (const Point& q : queries) {
      double best = std::numeric_limits<double>::infinity();
      for (BlockId b = 0; b < index.num_blocks(); ++b) {
        for (const Point& p : index.BlockPoints(b)) {
          const double sq = SquaredDistance(p, q);
          best = sq < best ? sq : best;
        }
      }
      sink += best;
    }
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  benchmark::DoNotOptimize(sink);
}

void ScanSoa(benchmark::State& state, IndexType type,
             const std::string& row) {
  const SpatialIndex& index = IndexFor(type);
  const std::vector<Point> queries = QueryPoints();
  Record& r = Records()[row];
  double sink = 0.0;
  for (auto _ : state) {
    Stopwatch timer;
    for (const Point& q : queries) {
      double best = std::numeric_limits<double>::infinity();
      for (BlockId b = 0; b < index.num_blocks(); ++b) {
        const BlockColumns cols = index.BlockSoA(b);
        const double sq =
            MinSquaredDistance(cols.x, cols.y, cols.size, q.x, q.y);
        best = sq < best ? sq : best;
      }
      sink += best;
    }
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  benchmark::DoNotOptimize(sink);
}

// --- getknn/<index>: the full searcher with block skipping. -----------

void GetKnnRow(benchmark::State& state, IndexType type,
               const std::string& row) {
  const SpatialIndex& index = IndexFor(type);
  const std::vector<Point> queries = QueryPoints();
  Record& r = Records()[row];
  KnnSearcher searcher(index);
  double sink = 0.0;
  for (auto _ : state) {
    Stopwatch timer;
    for (const Point& q : queries) {
      const Neighborhood nbr = searcher.GetKnn(q, 16);
      sink += nbr.empty() ? 0.0 : nbr.back().dist;
    }
    r.wall_seconds += timer.ElapsedSeconds();
    ++r.ops;
  }
  r.blocks_scanned = searcher.stats().blocks_scanned;
  r.blocks_skipped = searcher.stats().blocks_skipped;
  benchmark::DoNotOptimize(sink);
}

#define KNNQ_BENCH_STRUCTURE(name, type)                             \
  void BM_ScanAos_##name(benchmark::State& state) {                  \
    ScanAos(state, type, "scan/" #name "/aos");                      \
  }                                                                  \
  BENCHMARK(BM_ScanAos_##name);                                      \
  void BM_ScanSoa_##name(benchmark::State& state) {                  \
    ScanSoa(state, type, "scan/" #name "/soa_simd");                 \
  }                                                                  \
  BENCHMARK(BM_ScanSoa_##name);                                      \
  void BM_GetKnn_##name(benchmark::State& state) {                   \
    GetKnnRow(state, type, "getknn/" #name);                         \
  }                                                                  \
  BENCHMARK(BM_GetKnn_##name)

KNNQ_BENCH_STRUCTURE(grid, IndexType::kGrid);
KNNQ_BENCH_STRUCTURE(quadtree, IndexType::kQuadtree);
KNNQ_BENCH_STRUCTURE(rtree, IndexType::kRTree);

#undef KNNQ_BENCH_STRUCTURE

/// Writes rows plus the simd_speedup summary check_bench.py gates.
void WriteBenchJson() {
  const char* env = std::getenv("KNNQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_kernels.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  std::fprintf(out, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(out, "  \"scale\": %zu,\n", Scale());
  std::fprintf(out, "  \"simd_available\": %s,\n",
               SimdAvailable() ? "true" : "false");
  std::fprintf(out, "  \"reference\": \"kernel/aos/64k\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, r] : Records()) {
    std::fprintf(out,
                 "%s    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"ops\": %zu, \"qps\": %.2f, \"blocks_scanned\": %zu, "
                 "\"blocks_skipped\": %zu}",
                 first ? "" : ",\n", name.c_str(), r.wall_seconds, r.ops,
                 r.qps(), r.blocks_scanned, r.blocks_skipped);
    first = false;
  }
  std::fprintf(out, "\n  ],\n");

  const auto qps_ratio = [](const char* num, const char* den) {
    const auto& records = Records();
    const auto n = records.find(num);
    const auto d = records.find(den);
    if (n == records.end() || d == records.end()) return 0.0;
    if (d->second.qps() <= 0.0) return 0.0;
    return n->second.qps() / d->second.qps();
  };
  const double simd_speedup =
      qps_ratio("kernel/soa_simd/64k", "kernel/aos/64k");
  const double scalar_speedup =
      qps_ratio("kernel/soa_scalar/64k", "kernel/aos/64k");
  const auto skip_rate = [](const char* row) {
    const auto it = Records().find(row);
    if (it == Records().end()) return 0.0;
    const double total = static_cast<double>(it->second.blocks_scanned +
                                             it->second.blocks_skipped);
    return total > 0.0
               ? static_cast<double>(it->second.blocks_skipped) / total
               : 0.0;
  };
  std::fprintf(out,
               "  \"summary\": {\"simd_speedup\": %.3f, "
               "\"soa_scalar_speedup\": %.3f, "
               "\"scan_speedup_grid\": %.3f, "
               "\"scan_speedup_quadtree\": %.3f, "
               "\"scan_speedup_rtree\": %.3f, "
               "\"skip_rate_grid\": %.4f, "
               "\"skip_rate_quadtree\": %.4f, "
               "\"skip_rate_rtree\": %.4f}\n}\n",
               simd_speedup, scalar_speedup,
               qps_ratio("scan/grid/soa_simd", "scan/grid/aos"),
               qps_ratio("scan/quadtree/soa_simd", "scan/quadtree/aos"),
               qps_ratio("scan/rtree/soa_simd", "scan/rtree/aos"),
               skip_rate("getknn/grid"), skip_rate("getknn/quadtree"),
               skip_rate("getknn/rtree"));
  std::fclose(out);
  std::printf("wrote %s (simd_speedup=%.2fx, soa_scalar=%.2fx)\n",
              path.c_str(), simd_speedup, scalar_speedup);
}

}  // namespace
}  // namespace knnq::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  knnq::bench::WriteBenchJson();
  return 0;
}
