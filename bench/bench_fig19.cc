// Figure 19: execution time of a query with a kNN-select on the inner
// relation of a kNN-join - Block-Marking vs the conceptually correct
// QEP, varying the number of points in the outer relation.
//
// Paper shape: Block-Marking wins by ~3 orders of magnitude, and the
// gap widens with |outer| because whole outer blocks are excluded while
// the naive plan computes a neighborhood per outer point.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kJoinK = 10;
constexpr std::size_t kSelectK = 10;

SelectInnerJoinQuery MakeQuery(std::size_t outer_n) {
  const PointSet& outer = Berlin(outer_n, /*seed=*/1111, /*first_id=*/0);
  const PointSet& inner =
      Berlin(128000 * Scale(), /*seed=*/2222, /*first_id=*/10000000);
  return SelectInnerJoinQuery{
      .outer = &IndexOf(outer),
      .inner = &IndexOf(inner),
      .join_k = kJoinK,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = kSelectK,
  };
}

void BM_Fig19_ConceptualQEP(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  std::size_t pairs = 0;
  for (auto _ : state) {
    auto result = SelectInnerJoinNaive(query);
    pairs = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
  state.counters["result_pairs"] = static_cast<double>(pairs);
}

void BM_Fig19_BlockMarking(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  std::size_t pairs = 0;
  SelectInnerJoinStats stats;
  for (auto _ : state) {
    stats = SelectInnerJoinStats{};
    auto result =
        SelectInnerJoinBlockMarking(query, PreprocessMode::kContour, &stats);
    pairs = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
  state.counters["result_pairs"] = static_cast<double>(pairs);
  state.counters["contributing_blocks"] =
      static_cast<double>(stats.contributing_blocks);
}

BENCHMARK(BM_Fig19_ConceptualQEP)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

BENCHMARK(BM_Fig19_BlockMarking)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
