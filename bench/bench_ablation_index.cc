// Ablation: index-structure independence (paper Section 2/6: "our
// algorithms are independent of a specific indexing structure" and are
// expected to keep their effectiveness with R-trees or quadtrees).
// Runs the same Block-Marking select-inner-join and 2-kNN-select
// queries over grid, quadtree and R-tree indexes.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"
#include "src/core/two_selects.h"

namespace knnq::bench {
namespace {

IndexType TypeOf(std::int64_t arg) {
  switch (arg) {
    case 0:
      return IndexType::kGrid;
    case 1:
      return IndexType::kQuadtree;
    default:
      return IndexType::kRTree;
  }
}

void BM_AblationIndex_BlockMarking(benchmark::State& state) {
  const IndexType type = TypeOf(state.range(0));
  const PointSet& outer =
      Berlin(64000 * Scale(), /*seed=*/911, /*first_id=*/0);
  const PointSet& inner =
      Berlin(64000 * Scale(), /*seed=*/922, /*first_id=*/10000000);
  const SelectInnerJoinQuery query{
      .outer = &IndexOf(outer, type),
      .inner = &IndexOf(inner, type),
      .join_k = 10,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = 10,
  };
  for (auto _ : state) {
    auto result = SelectInnerJoinBlockMarking(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(ToString(type));
}

void BM_AblationIndex_TwoKnnSelect(benchmark::State& state) {
  const IndexType type = TypeOf(state.range(0));
  const PointSet& relation =
      Berlin(128000 * Scale(), /*seed=*/933, /*first_id=*/0);
  const TwoSelectsQuery query{
      .relation = &IndexOf(relation, type),
      .f1 = Point{.id = -1, .x = 15200, .y = 12100},
      .k1 = 10,
      .f2 = Point{.id = -1, .x = 15350, .y = 12040},
      .k2 = 1280,
  };
  for (auto _ : state) {
    auto result = TwoSelectsOptimized(query);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(ToString(type));
}

BENCHMARK(BM_AblationIndex_BlockMarking)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->DenseRange(0, 2, 1);

BENCHMARK(BM_AblationIndex_TwoKnnSelect)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20)
    ->DenseRange(0, 2, 1);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
