// Serving-path throughput: the TCP server + loadgen stack against
// in-process RunBatch on the same workload and engine configuration.
//
// Rows form a (threads x clients) grid over the uniform and skewed
// engine-batch workloads:
//
//   * inprocess/<workload>/t<T>       - RunBatch on a T-thread engine,
//     the zero-serving-overhead reference;
//   * server/<workload>/t<T>/c<C>     - knnq server on the same engine
//     config, driven by C closed-loop loadgen connections over
//     loopback TCP; records qps plus client-observed latency
//     percentiles, and asserts zero response/ordering errors.
//
// BENCH_server.json (override with KNNQ_BENCH_JSON) carries every row
// plus the summary ratio CI gates: server_vs_inprocess_t4c8 - the
// served fraction of in-process throughput at 4 worker threads and 8
// clients - must stay >= 0.7 (tools/check_bench.py).
//
// Workloads are textual, exactly like bench_engine_batch: --workload
// FILE and --workload-skewed FILE replay committed .knnql scripts;
// without them the generated batches (same shapes as the committed
// files) are used.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/data/dataset_io.h"
#include "src/engine/query_engine.h"
#include "src/lang/unparser.h"
#include "src/server/loadgen.h"
#include "src/server/server.h"
#include "src/server/wire.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kBatchSize = 264;
/// Loadgen replays per benchmark iteration (requests = C * repeat * N).
constexpr std::size_t kRepeat = 2;

Catalog MakeCatalog() {
  Catalog catalog;
  const std::size_t n = 4000 * Scale();
  Status s = catalog.AddRelation("uniform",
                                 Uniform(n, /*seed=*/7001, /*first_id=*/0));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "city", Berlin(n, /*seed=*/7002, /*first_id=*/10000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "clustered",
      Clustered(8, n / 16, /*seed=*/7003, /*first_id=*/20000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  return catalog;
}

/// One round of the six query shapes (the bench_engine_batch mix).
void AppendRound(std::vector<QuerySpec>& specs, double dx, double dy,
                 std::size_t k) {
  specs.push_back(TwoSelectsSpec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
      .s2 = {.focal = {.id = -1, .x = dx + 400, .y = dy + 300},
             .k = k + 8},
  });
  specs.push_back(SelectInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 4},
  });
  specs.push_back(SelectOuterJoinSpec{
      .outer = "city",
      .inner = "uniform",
      .join_k = 1 + k % 4,
      .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 8 + k},
  });
  specs.push_back(UnchainedJoinsSpec{
      .a = "uniform",
      .b = "city",
      .c = "clustered",
      .k_ab = 1 + k % 3,
      .k_cb = 1 + (k + 1) % 3,
  });
  specs.push_back(ChainedJoinsSpec{
      .a = "clustered",
      .b = "city",
      .c = "uniform",
      .k_ab = 1 + k % 3,
      .k_bc = 1 + (k + 2) % 3,
  });
  specs.push_back(RangeInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .range = BoundingBox(dx, dy, dx + 1500, dy + 1200),
  });
}

std::vector<QuerySpec> GeneratedSpecs(bool skewed) {
  std::vector<QuerySpec> specs;
  specs.reserve(kBatchSize);
  const BoundingBox frame = Frame();
  for (std::size_t i = 0; specs.size() < kBatchSize; ++i) {
    if (skewed) {
      const std::size_t hot = i % 4;
      AppendRound(specs,
                  frame.min_x() + static_cast<double>(4000 + hot * 5600),
                  frame.min_y() + static_cast<double>(3000 + hot * 4400),
                  2 + hot);
    } else {
      AppendRound(specs,
                  frame.min_x() + static_cast<double>((i * 997) % 28000),
                  frame.min_y() + static_cast<double>((i * 613) % 22000),
                  1 + i % 8);
    }
  }
  return specs;
}

std::string& WorkloadPath(const char* kind) {
  static auto& paths = *new std::map<std::string, std::string>();
  return paths[kind];
}

/// The workload as planner specs (in-process reference) and canonical
/// statements (wire replay) - the same queries either way.
struct Workload {
  std::vector<QuerySpec> specs;
  std::vector<std::string> statements;
};

const Workload& WorkloadOf(const char* kind) {
  static auto& cache = *new std::map<std::string, Workload>();
  const auto it = cache.find(kind);
  if (it != cache.end()) return it->second;

  Workload workload;
  const std::string& path = WorkloadPath(kind);
  if (path.empty()) {
    workload.specs = GeneratedSpecs(std::string(kind) == "skewed");
    workload.statements.reserve(workload.specs.size());
    for (const QuerySpec& spec : workload.specs) {
      workload.statements.push_back(knnql::Unparse(spec));
    }
  } else {
    auto text = ReadTextFile(path);
    KNNQ_CHECK_MSG(text.ok(), text.status().ToString().c_str());
    EngineOptions options;
    options.num_threads = 1;
    const QueryEngine parser(MakeCatalog(), options);
    auto specs = parser.ParseBatch(*text);
    KNNQ_CHECK_MSG(specs.ok(), specs.status().ToString().c_str());
    workload.specs = std::move(specs.value());
    auto statements = server::SplitStatements(*text);
    KNNQ_CHECK_MSG(statements.ok(),
                   statements.status().ToString().c_str());
    workload.statements = std::move(statements.value());
  }
  return cache.emplace(kind, std::move(workload)).first->second;
}

/// Engines are NOT memoized across rows: each row measures a cold
/// server process shape, and idle pools cost nothing between rows.
std::unique_ptr<QueryEngine> MakeEngine(std::size_t threads) {
  EngineOptions options;
  options.num_threads = threads;
  options.pool_queue_limit = 512;
  return std::make_unique<QueryEngine>(MakeCatalog(), options);
}

struct RunRecord {
  std::size_t threads = 1;
  std::size_t clients = 0;  // 0: in-process.
  std::string workload;
  double wall_seconds = 0.0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  double qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(requests) / wall_seconds
               : 0.0;
  }
};

std::map<std::string, RunRecord>& Records() {
  static auto& records = *new std::map<std::string, RunRecord>();
  return records;
}

void BM_InProcess(benchmark::State& state, const char* kind) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto engine = MakeEngine(threads);
  const Workload& workload = WorkloadOf(kind);

  double wall = 0.0;
  std::size_t ran = 0;
  for (auto _ : state) {
    Stopwatch timer;
    // Match the loadgen's total request count so both sides do the
    // same work per iteration.
    for (std::size_t r = 0; r < kRepeat; ++r) {
      std::vector<EngineResult> results =
          engine->RunBatch(workload.specs);
      for (const EngineResult& result : results) {
        KNNQ_CHECK_MSG(result.ok(), result.status.ToString().c_str());
      }
      ran += results.size();
      benchmark::DoNotOptimize(results);
    }
    wall += timer.ElapsedSeconds();
  }

  RunRecord record;
  record.threads = threads;
  record.workload = kind;
  record.wall_seconds = wall;
  record.requests = ran;
  const std::string name =
      "inprocess/" + std::string(kind) + "/t" + std::to_string(threads);
  Records()[name] = record;
  state.counters["qps"] = record.qps();
  state.counters["pool_threads"] = static_cast<double>(threads);
}

void BM_Server(benchmark::State& state, const char* kind) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto clients = static_cast<std::size_t>(state.range(1));
  const auto engine = MakeEngine(threads);
  const Workload& workload = WorkloadOf(kind);

  server::ServerOptions server_options;
  server_options.max_inflight = 128;
  server::Server server(engine.get(), server_options);
  const Status started = server.Start();
  KNNQ_CHECK_MSG(started.ok(), started.ToString().c_str());

  server::LoadgenOptions loadgen_options;
  loadgen_options.port = server.port();
  loadgen_options.clients = clients;
  loadgen_options.repeat = kRepeat;

  RunRecord record;
  record.threads = threads;
  record.clients = clients;
  record.workload = kind;
  for (auto _ : state) {
    const auto report =
        server::RunLoadgen(loadgen_options, workload.statements);
    KNNQ_CHECK_MSG(report.ok(), report.status().ToString().c_str());
    KNNQ_CHECK_MSG(report->clean(),
                   "server bench saw response/ordering errors");
    record.wall_seconds += report->wall_seconds;
    record.requests += report->requests;
    record.errors +=
        report->error_responses + report->protocol_errors;
    record.p50_ms = report->p50_ms;
    record.p95_ms = report->p95_ms;
    record.p99_ms = report->p99_ms;
  }
  server.Stop();

  const std::string name = "server/" + std::string(kind) + "/t" +
                           std::to_string(threads) + "/c" +
                           std::to_string(clients);
  Records()[name] = record;
  state.counters["qps"] = record.qps();
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["p99_ms"] = record.p99_ms;
}

BENCHMARK_CAPTURE(BM_InProcess, uniform, "uniform")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(4);

BENCHMARK_CAPTURE(BM_InProcess, skewed, "skewed")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(2)
    ->Arg(4);

BENCHMARK_CAPTURE(BM_Server, uniform, "uniform")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({4, 8});

BENCHMARK_CAPTURE(BM_Server, skewed, "skewed")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({4, 8});

}  // namespace

/// --workload FILE / --workload-skewed FILE, consumed before
/// benchmark::Initialize. Returns -1 to continue, else an exit code.
int HandleWorkloadArgs(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag != "--workload" && flag != "--workload-skewed") {
      argv[kept++] = argv[i];
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return 1;
    }
    WorkloadPath(flag == "--workload" ? "uniform" : "skewed") =
        argv[++i];
  }
  argc = kept;
  return -1;
}

void WriteBenchJson() {
  const char* env = std::getenv("KNNQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_server.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  std::fprintf(out, "{\n  \"bench\": \"server\",\n");
  std::fprintf(out, "  \"scale\": %zu,\n", Scale());
  std::fprintf(out, "  \"reference\": \"inprocess/uniform/t4\",\n");
  std::fprintf(out, "  \"benchmarks\": [\n");
  bool first = true;
  std::size_t total_errors = 0;
  for (const auto& [name, r] : Records()) {
    std::fprintf(
        out,
        "%s    {\"name\": \"%s\", \"threads\": %zu, \"clients\": %zu, "
        "\"workload\": \"%s\", \"wall_seconds\": %.6f, \"requests\": "
        "%zu, \"errors\": %zu, \"qps\": %.2f, \"p50_ms\": %.3f, "
        "\"p95_ms\": %.3f, \"p99_ms\": %.3f}",
        first ? "" : ",\n", name.c_str(), r.threads, r.clients,
        r.workload.c_str(), r.wall_seconds, r.requests, r.errors,
        r.qps(), r.p50_ms, r.p95_ms, r.p99_ms);
    total_errors += r.errors;
    first = false;
  }
  std::fprintf(out, "\n  ],\n");

  // The acceptance ratio: served throughput over in-process RunBatch
  // at the same engine config (4 threads), 8 concurrent clients.
  const auto ratio = [](const char* server_row, const char* ref_row) {
    const auto& records = Records();
    const auto s = records.find(server_row);
    const auto r = records.find(ref_row);
    if (s == records.end() || r == records.end()) return 0.0;
    if (r->second.qps() <= 0.0) return 0.0;
    return s->second.qps() / r->second.qps();
  };
  const double uniform_ratio =
      ratio("server/uniform/t4/c8", "inprocess/uniform/t4");
  const double skewed_ratio =
      ratio("server/skewed/t4/c8", "inprocess/skewed/t4");
  std::fprintf(out,
               "  \"summary\": {\"server_vs_inprocess_t4c8\": %.3f, "
               "\"server_vs_inprocess_t4c8_skewed\": %.3f, "
               "\"total_errors\": %zu}\n}\n",
               uniform_ratio, skewed_ratio, total_errors);
  std::fclose(out);
  std::printf("wrote %s (server/inprocess t4c8: uniform %.2fx, skewed "
              "%.2fx, errors %zu)\n",
              path.c_str(), uniform_ratio, skewed_ratio, total_errors);
}

}  // namespace knnq::bench

int main(int argc, char** argv) {
  if (const int rc = knnq::bench::HandleWorkloadArgs(argc, argv); rc >= 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  knnq::bench::WriteBenchJson();
  return 0;
}
