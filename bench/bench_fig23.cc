// Figure 23: two unchained kNN-joins with BOTH outer relations
// clustered (equal-size 4000-point, equal-area, non-overlapping
// clusters); the number of clusters in A exceeds C's by
// delta = 1 ... 10.
//
// Paper shape: starting the evaluation with (C JOIN B) - the relation
// with fewer clusters, i.e. smaller coverage - beats starting with
// (A JOIN B), and the gap grows with delta.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/unchained_joins.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kBaseClustersC = 4;

struct Inputs {
  const SpatialIndex* a;
  const SpatialIndex* b;
  const SpatialIndex* c;
};

Inputs MakeInputs(std::size_t delta) {
  // Equal-size, equal-area, non-overlapping clusters per Section 6.2.1;
  // cluster size scales with the rest of the workload.
  const PointSet& a =
      Clustered(kBaseClustersC + delta, 400 * Scale(), /*seed=*/511,
                /*first_id=*/0);
  const PointSet& b =
      Berlin(128000 * Scale(), /*seed=*/522, /*first_id=*/10000000);
  const PointSet& c = Clustered(kBaseClustersC, 400 * Scale(),
                                /*seed=*/533, /*first_id=*/20000000);
  return Inputs{&IndexOf(a), &IndexOf(b), &IndexOf(c)};
}

// Starting with (C JOIN B): the Block-Marking evaluator always runs its
// first join on the relation passed as 'a', so pass C there and swap
// the triplet roles conceptually (the result set is identical either
// way; see the unchained order-independence test).
void BM_Fig23_StartWithC(benchmark::State& state) {
  const Inputs in = MakeInputs(static_cast<std::size_t>(state.range(0)));
  const UnchainedJoinsQuery query{
      .a = in.c, .b = in.b, .c = in.a, .k_ab = 10, .k_cb = 10};
  for (auto _ : state) {
    auto result = UnchainedJoinsBlockMarking(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["clusters_delta"] = static_cast<double>(state.range(0));
}

void BM_Fig23_StartWithA(benchmark::State& state) {
  const Inputs in = MakeInputs(static_cast<std::size_t>(state.range(0)));
  const UnchainedJoinsQuery query{
      .a = in.a, .b = in.b, .c = in.c, .k_ab = 10, .k_cb = 10};
  for (auto _ : state) {
    auto result = UnchainedJoinsBlockMarking(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["clusters_delta"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_Fig23_StartWithC)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(1, 10, 1);

BENCHMARK(BM_Fig23_StartWithA)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(1, 10, 1);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
