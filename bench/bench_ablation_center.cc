// Ablation: Theorem 1 - probing the block CENTER minimizes the search
// threshold (added slack = one diagonal); probing a corner forces the
// slack to two diagonals, so fewer blocks are classified
// Non-Contributing and more points are joined.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"

namespace knnq::bench {
namespace {

SelectInnerJoinQuery MakeQuery() {
  const PointSet& outer =
      Berlin(128000 * Scale(), /*seed=*/1111, /*first_id=*/0);
  const PointSet& inner =
      Berlin(128000 * Scale(), /*seed=*/1122, /*first_id=*/10000000);
  return SelectInnerJoinQuery{
      .outer = &IndexOf(outer),
      .inner = &IndexOf(inner),
      .join_k = 10,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = 10,
  };
}

void BM_AblationCenter_CenterProbe(benchmark::State& state) {
  const auto query = MakeQuery();
  SelectInnerJoinStats stats;
  for (auto _ : state) {
    stats = SelectInnerJoinStats{};
    auto result = SelectInnerJoinBlockMarking(
        query, PreprocessMode::kExhaustive, &stats, ProbePoint::kCenter);
    benchmark::DoNotOptimize(result);
  }
  state.counters["contributing_blocks"] =
      static_cast<double>(stats.contributing_blocks);
  state.counters["points_joined"] =
      static_cast<double>(stats.neighborhoods_computed);
}

void BM_AblationCenter_CornerProbe(benchmark::State& state) {
  const auto query = MakeQuery();
  SelectInnerJoinStats stats;
  for (auto _ : state) {
    stats = SelectInnerJoinStats{};
    auto result = SelectInnerJoinBlockMarking(
        query, PreprocessMode::kExhaustive, &stats, ProbePoint::kCorner);
    benchmark::DoNotOptimize(result);
  }
  state.counters["contributing_blocks"] =
      static_cast<double>(stats.contributing_blocks);
  state.counters["points_joined"] =
      static_cast<double>(stats.neighborhoods_computed);
}

BENCHMARK(BM_AblationCenter_CenterProbe)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_AblationCenter_CornerProbe)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
