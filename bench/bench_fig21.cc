// Figure 21: Counting vs Block-Marking when the OUTER relation is
// large/high-density.
//
// Paper shape: Block-Marking wins - whole blocks of the dense outer
// relation are excluded at per-block cost, while Counting pays its
// MAXDIST block scan for every single outer point.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/select_inner_join.h"

namespace knnq::bench {
namespace {

SelectInnerJoinQuery MakeQuery(std::size_t outer_n) {
  const PointSet& outer = Berlin(outer_n, /*seed=*/1313, /*first_id=*/0);
  const PointSet& inner =
      Berlin(128000 * Scale(), /*seed=*/2424, /*first_id=*/10000000);
  return SelectInnerJoinQuery{
      .outer = &IndexOf(outer),
      .inner = &IndexOf(inner),
      .join_k = 10,
      .focal = Point{.id = -1, .x = 15500, .y = 11800},
      .select_k = 10,
  };
}

void BM_Fig21_Counting(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  for (auto _ : state) {
    auto result = SelectInnerJoinCounting(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
}

void BM_Fig21_BlockMarking(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  for (auto _ : state) {
    auto result = SelectInnerJoinBlockMarking(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["outer_points"] =
      static_cast<double>(query.outer->num_points());
}

BENCHMARK(BM_Fig21_Counting)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(128000)
    ->Arg(256000)
    ->Arg(512000)
    ->Arg(1024000);

BENCHMARK(BM_Fig21_BlockMarking)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(128000)
    ->Arg(256000)
    ->Arg(512000)
    ->Arg(1024000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
