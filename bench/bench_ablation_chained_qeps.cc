// Ablation: the three chained-join QEPs of Figure 13 head-to-head
// (Section 4.2.1's cost discussion): right-deep materializes B JOIN C
// in full; join-intersection computes both joins blindly; the nested
// join touches only reachable b's.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/chained_joins.h"

namespace knnq::bench {
namespace {

ChainedJoinsQuery MakeQuery() {
  const PointSet& a = Clustered(3, 4000 * Scale(), /*seed=*/1211,
                                /*first_id=*/0);
  const PointSet& b =
      Berlin(128000 * Scale(), /*seed=*/1222, /*first_id=*/10000000);
  const PointSet& c =
      Berlin(64000 * Scale(), /*seed=*/1233, /*first_id=*/20000000);
  return ChainedJoinsQuery{
      .a = &IndexOf(a),
      .b = &IndexOf(b),
      .c = &IndexOf(c),
      .k_ab = 10,
      .k_bc = 10,
  };
}

void BM_AblationChained_Qep1RightDeep(benchmark::State& state) {
  const auto query = MakeQuery();
  for (auto _ : state) {
    auto result = ChainedJoinsRightDeep(query);
    benchmark::DoNotOptimize(result);
  }
}

void BM_AblationChained_Qep2JoinIntersection(benchmark::State& state) {
  const auto query = MakeQuery();
  for (auto _ : state) {
    auto result = ChainedJoinsJoinIntersection(query);
    benchmark::DoNotOptimize(result);
  }
}

void BM_AblationChained_Qep3Nested(benchmark::State& state) {
  const auto query = MakeQuery();
  for (auto _ : state) {
    auto result = ChainedJoinsNested(query, /*cache_bc=*/true);
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_AblationChained_Qep1RightDeep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_AblationChained_Qep2JoinIntersection)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_AblationChained_Qep3Nested)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
