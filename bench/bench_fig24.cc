// Figure 24: two chained kNN-joins (A JOIN B) then (B JOIN C) - the
// Nested Join QEP with and without the hash-table cache of
// (B JOIN C) neighborhoods, varying dataset size.
//
// Paper shape: caching significantly reduces execution time because a
// b reachable from several a's is joined with C only once.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/chained_joins.h"

namespace knnq::bench {
namespace {

ChainedJoinsQuery MakeQuery(std::size_t n) {
  // Clustered A makes cache hits frequent: nearby a's share b's.
  const PointSet& a = Clustered(4, 4000 * Scale(), /*seed=*/611,
                                /*first_id=*/0);
  const PointSet& b = Berlin(n, /*seed=*/622, /*first_id=*/10000000);
  const PointSet& c = Berlin(n, /*seed=*/633, /*first_id=*/20000000);
  return ChainedJoinsQuery{
      .a = &IndexOf(a),
      .b = &IndexOf(b),
      .c = &IndexOf(c),
      .k_ab = 10,
      .k_bc = 10,
  };
}

void BM_Fig24_NestedCached(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  ChainedJoinsStats stats;
  for (auto _ : state) {
    stats = ChainedJoinsStats{};
    auto result = ChainedJoinsNested(query, /*cache_bc=*/true, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["b_points"] = static_cast<double>(query.b->num_points());
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["bc_probes"] =
      static_cast<double>(stats.b_neighborhoods_computed);
}

void BM_Fig24_NestedUncached(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)) *
                               Scale());
  ChainedJoinsStats stats;
  for (auto _ : state) {
    stats = ChainedJoinsStats{};
    auto result = ChainedJoinsNested(query, /*cache_bc=*/false, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["b_points"] = static_cast<double>(query.b->num_points());
  state.counters["bc_probes"] =
      static_cast<double>(stats.b_neighborhoods_computed);
}

BENCHMARK(BM_Fig24_NestedCached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

BENCHMARK(BM_Fig24_NestedUncached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(32000)
    ->Arg(64000)
    ->Arg(128000)
    ->Arg(256000);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
