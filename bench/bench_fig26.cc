// Figure 26: two kNN-selects - the 2-kNN-select algorithm vs the
// conceptually correct QEP. k1 is fixed at 10; the x-axis is
// log2(k2 / k1) = 0 ... 8 (k2 up to 2560).
//
// Paper shape: the naive plan degrades as k2 grows (its locality covers
// ever more of the space) while 2-kNN-select stays nearly flat, up to
// ~2 orders of magnitude faster, because the second locality is clipped
// to the first result's search threshold.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/two_selects.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kK1 = 10;

TwoSelectsQuery MakeQuery(std::size_t log2_ratio) {
  const PointSet& relation =
      Berlin(256000 * Scale(), /*seed=*/811, /*first_id=*/0);
  return TwoSelectsQuery{
      .relation = &IndexOf(relation),
      .f1 = Point{.id = -1, .x = 15200, .y = 12100},
      .k1 = kK1,
      .f2 = Point{.id = -1, .x = 15350, .y = 12040},
      .k2 = kK1 << log2_ratio,
  };
}

void BM_Fig26_ConceptualQEP(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = TwoSelectsNaive(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["k2"] = static_cast<double>(query.k2);
}

void BM_Fig26_TwoKnnSelect(benchmark::State& state) {
  const auto query = MakeQuery(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = TwoSelectsOptimized(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["k2"] = static_cast<double>(query.k2);
}

BENCHMARK(BM_Fig26_ConceptualQEP)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20)
    ->DenseRange(0, 8, 1);

BENCHMARK(BM_Fig26_TwoKnnSelect)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20)
    ->DenseRange(0, 8, 1);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
