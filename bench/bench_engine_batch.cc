// Engine batch throughput: RunBatch of a mixed bag of all six query
// shapes over worker pools of increasing size, against serial Run -
// now under two workload skews and with/without the engine's shared
// NeighborhoodCache:
//
//   * uniform - every query has distinct parameters; the cache can
//     only reuse join probes that happen to collide. Expected: cached
//     within noise of uncached (the no-regression guard).
//   * skewed  - queries drawn from a small pool of hot templates
//     (repeated focal points, repeated join specs), the shape of real
//     serving traffic. Expected: the cache converts repeated getkNN
//     probes into hits and wins throughput outright.
//
// Besides the usual console counters, the binary writes a
// machine-readable summary to BENCH_engine_batch.json (override with
// KNNQ_BENCH_JSON) that CI archives and gates with
// tools/check_bench.py: per-run throughput, cache hit rates, and the
// skewed cached-vs-uncached speedup.
//
// The first iteration of every cached configuration also asserts that
// the cached batch output is byte-identical to uncached serial
// execution - the equivalence the engine guarantees.
//
// Workloads are textual: --workload FILE / --workload-skewed FILE
// replace the generated uniform / skewed batches with the statements
// of a .knnql script (parsed against the bench catalog:  relations
// "uniform", "city", "clustered"), so benchmark mixes are committable
// and diffable. The committed files under bench/workloads/ are the
// generators' exact output; --dump-workloads DIR regenerates them.
//
// Churn mode measures the query/update workload class: the skewed
// workload replays while QueryEngine::Mutate interleaves insert/delete
// batches against the "clustered" relation (so per-relation cache
// invalidation keeps "uniform" and "city" neighborhoods hot). The
// update:query ratio defaults to 1:4 and is configurable with
// --churn U:Q. The JSON summary's churn_read_ratio_t4 (churn qps over
// read-only qps at the same config) is gated by tools/check_bench.py
// at >= 0.5x.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/data/dataset_io.h"
#include "src/engine/neighborhood_cache.h"
#include "src/engine/query_engine.h"
#include "src/lang/unparser.h"
#include "src/obs/trace.h"
#include "src/server/server.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kBatchSize = 264;  // 44 rounds x 6 shapes >= 256.
constexpr std::size_t kCacheMb = 64;

Catalog MakeCatalog() {
  Catalog catalog;
  const std::size_t n = 4000 * Scale();
  Status s = catalog.AddRelation("uniform",
                                 Uniform(n, /*seed=*/7001, /*first_id=*/0));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "city", Berlin(n, /*seed=*/7002, /*first_id=*/10000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "clustered",
      Clustered(8, n / 16, /*seed=*/7003, /*first_id=*/20000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  return catalog;
}

/// One round of the six query shapes parameterized by (dx, dy, k).
void AppendRound(std::vector<QuerySpec>& specs, double dx, double dy,
                 std::size_t k) {
  specs.push_back(TwoSelectsSpec{
      .relation = "city",
      .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
      .s2 = {.focal = {.id = -1, .x = dx + 400, .y = dy + 300},
             .k = k + 8},
  });
  specs.push_back(SelectInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 4},
  });
  specs.push_back(SelectOuterJoinSpec{
      .outer = "city",
      .inner = "uniform",
      .join_k = 1 + k % 4,
      .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 8 + k},
  });
  specs.push_back(UnchainedJoinsSpec{
      .a = "uniform",
      .b = "city",
      .c = "clustered",
      .k_ab = 1 + k % 3,
      .k_cb = 1 + (k + 1) % 3,
  });
  specs.push_back(ChainedJoinsSpec{
      .a = "clustered",
      .b = "city",
      .c = "uniform",
      .k_ab = 1 + k % 3,
      .k_bc = 1 + (k + 2) % 3,
  });
  specs.push_back(RangeInnerJoinSpec{
      .outer = "uniform",
      .inner = "city",
      .join_k = k,
      .range = BoundingBox(dx, dy, dx + 1500, dy + 1200),
  });
}

/// Every round gets distinct parameters: the cache's worst case.
std::vector<QuerySpec> GeneratedUniformSpecs() {
  std::vector<QuerySpec> specs;
  specs.reserve(kBatchSize);
  const BoundingBox frame = Frame();
  for (std::size_t i = 0; specs.size() < kBatchSize; ++i) {
    AppendRound(specs,
                frame.min_x() + static_cast<double>((i * 997) % 28000),
                frame.min_y() + static_cast<double>((i * 613) % 22000),
                1 + i % 8);
  }
  return specs;
}

/// Rounds cycle through a pool of 4 hot parameter triples: the same
/// focal points and k values recur all batch long, the way real
/// serving traffic concentrates on hot spots.
std::vector<QuerySpec> GeneratedSkewedSpecs() {
  constexpr std::size_t kHotSpots = 4;
  std::vector<QuerySpec> specs;
  specs.reserve(kBatchSize);
  const BoundingBox frame = Frame();
  for (std::size_t i = 0; specs.size() < kBatchSize; ++i) {
    const std::size_t hot = i % kHotSpots;
    AppendRound(specs,
                frame.min_x() + static_cast<double>(4000 + hot * 5600),
                frame.min_y() + static_cast<double>(3000 + hot * 4400),
                2 + hot);
  }
  return specs;
}

/// Memoized engine per (pool size, cache budget) - index construction
/// is not what this bench measures, and keeping the cached engines
/// alive measures the steady-state hit rate a serving process reaches.
const QueryEngine& EngineWith(std::size_t threads, std::size_t cache_mb) {
  using Key = std::pair<std::size_t, std::size_t>;
  static auto& engines = *new std::map<Key, std::unique_ptr<QueryEngine>>();
  auto& slot = engines[{threads, cache_mb}];
  if (slot == nullptr) {
    EngineOptions options;
    options.num_threads = threads;
    options.planner.cache_mb = cache_mb;
    slot = std::make_unique<QueryEngine>(MakeCatalog(), options);
  }
  return *slot;
}

/// --workload / --workload-skewed override paths, set by main() before
/// the benchmarks run; empty means "use the generated batch".
std::string& WorkloadPath(const char* kind) {
  static auto& paths = *new std::map<std::string, std::string>();
  return paths[kind];
}

/// Parses a committed .knnql workload against the bench catalog.
std::vector<QuerySpec> LoadWorkload(const std::string& path) {
  auto text = ReadTextFile(path);
  KNNQ_CHECK_MSG(text.ok(), text.status().ToString().c_str());
  auto specs = EngineWith(1, /*cache_mb=*/0).ParseBatch(*text);
  KNNQ_CHECK_MSG(specs.ok(), specs.status().ToString().c_str());
  return std::move(specs.value());
}

std::vector<QuerySpec> UniformSpecs() {
  const std::string& path = WorkloadPath("uniform");
  return path.empty() ? GeneratedUniformSpecs() : LoadWorkload(path);
}

std::vector<QuerySpec> SkewedSpecs() {
  const std::string& path = WorkloadPath("skewed");
  return path.empty() ? GeneratedSkewedSpecs() : LoadWorkload(path);
}

/// Writes the generated batches as canonical KNNQL, one statement per
/// line — the source of the committed bench/workloads/*.knnql files.
void DumpWorkloads(const std::string& dir) {
  const auto dump = [&](const char* name,
                        const std::vector<QuerySpec>& specs) {
    const std::string path = dir + "/engine_batch_" + name + ".knnql";
    std::FILE* out = std::fopen(path.c_str(), "w");
    KNNQ_CHECK_MSG(out != nullptr, path.c_str());
    std::fprintf(out,
                 "-- bench_engine_batch %s workload (%zu queries).\n"
                 "-- Generated by: bench_engine_batch --dump-workloads\n"
                 "-- relations: uniform city clustered\n",
                 name, specs.size());
    for (const QuerySpec& spec : specs) {
      std::fprintf(out, "%s\n", knnql::Unparse(spec).c_str());
    }
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
  };
  dump("uniform", GeneratedUniformSpecs());
  dump("skewed", GeneratedSkewedSpecs());
}

/// Byte-identical equivalence: `engine`'s batch against UNCACHED serial
/// execution. Run once per (engine config, workload).
void CheckBatchEqualsUncachedSerial(const QueryEngine& engine,
                                    const std::vector<QuerySpec>& specs) {
  const QueryEngine& reference = EngineWith(1, /*cache_mb=*/0);
  const std::vector<EngineResult> batch = engine.RunBatch(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult serial = reference.Run(specs[i]);
    KNNQ_CHECK_MSG(batch[i].ok() && serial.ok(),
                   "engine bench query failed");
    KNNQ_CHECK_MSG(batch[i].output == serial.output,
                   "batch result differs from uncached serial execution");
  }
}

/// Churn configuration: updates applied per ChurnQueries() queries.
/// Set by --churn U:Q before the benchmarks run.
std::size_t& ChurnUpdates() {
  static std::size_t updates = 1;
  return updates;
}
std::size_t& ChurnQueries() {
  static std::size_t queries = 4;
  return queries;
}

/// One row of BENCH_engine_batch.json.
struct RunRecord {
  std::size_t threads = 1;
  std::string workload;
  std::size_t cache_mb = 0;
  double wall_seconds = 0.0;
  std::size_t queries = 0;
  /// Churn rows only: mutation ops applied while the queries ran.
  std::size_t updates = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_bytes = 0;

  double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(queries) / wall_seconds
                              : 0.0;
  }
  double hit_rate() const {
    const std::size_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) / total;
  }
};

/// name -> record; re-running a benchmark overwrites its row.
std::map<std::string, RunRecord>& Records() {
  static auto& records = *new std::map<std::string, RunRecord>();
  return records;
}

/// Shared body of every batch benchmark: measure RunBatch wall time,
/// fold ExecStats, record a JSON row and the console counters.
void RunBatchBenchmark(benchmark::State& state, const std::string& name,
                       const char* workload, std::size_t threads,
                       std::size_t cache_mb,
                       const std::vector<QuerySpec>& specs) {
  const QueryEngine& engine = EngineWith(threads, cache_mb);
  if (cache_mb > 0) {
    CheckBatchEqualsUncachedSerial(engine, specs);
    // The check warmed the cache; measure from cold so the reported
    // hit rate and speedup reflect one batch, not prior traffic.
    engine.neighborhood_cache()->Clear();
  }

  ExecStats total;
  double wall = 0.0;
  std::size_t ran = 0;
  for (auto _ : state) {
    total = ExecStats{};
    Stopwatch timer;
    std::vector<EngineResult> results = engine.RunBatch(specs);
    wall += timer.ElapsedSeconds();
    ran += specs.size();
    for (const EngineResult& result : results) total.Merge(result.stats);
    benchmark::DoNotOptimize(results);
  }

  RunRecord record;
  record.threads = threads;
  record.workload = workload;
  record.cache_mb = cache_mb;
  record.wall_seconds = wall;
  record.queries = ran;
  record.cache_hits = total.cache_hits;
  record.cache_misses = total.cache_misses;
  record.cache_bytes = total.cache_bytes;
  Records()[name] = record;

  state.counters["queries"] = static_cast<double>(specs.size());
  state.counters["pool_threads"] = static_cast<double>(threads);
  state.counters["qps"] = record.qps();
  state.counters["cache_hit_rate"] = record.hit_rate();
  ReportExecStats(state, total);
}

/// Churn body: replay the skewed workload in groups of ChurnQueries()
/// queries with ChurnUpdates() mutation ops applied between groups.
/// Uses a dedicated engine (NOT the memoized EngineWith pool): churn
/// mutates relations, and the shared engines must stay pristine for
/// the read-only benchmarks and their byte-identical checks.
void RunChurnBenchmark(benchmark::State& state, const std::string& name,
                       std::size_t threads, std::size_t cache_mb) {
  EngineOptions options;
  options.num_threads = threads;
  options.planner.cache_mb = cache_mb;
  QueryEngine engine(MakeCatalog(), options);
  const std::vector<QuerySpec> specs = SkewedSpecs();

  ExecStats total;
  double wall = 0.0;
  std::size_t ran = 0;
  std::size_t updates = 0;
  // Deterministic mutation stream: inserts draw fresh ids and frame
  // coordinates from an LCG; once enough points accumulated, every
  // batch erases as many as it inserts, so the relation's cardinality
  // stays put across iterations.
  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  const auto next_rand = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 11;
  };
  PointId next_id = 50'000'000;
  std::vector<PointId> live;
  const BoundingBox frame = Frame();

  for (auto _ : state) {
    total = ExecStats{};
    Stopwatch timer;
    std::size_t cursor = 0;
    while (cursor < specs.size()) {
      const std::size_t group =
          std::min(ChurnQueries(), specs.size() - cursor);
      const std::vector<QuerySpec> batch(
          specs.begin() + static_cast<std::ptrdiff_t>(cursor),
          specs.begin() + static_cast<std::ptrdiff_t>(cursor + group));
      std::vector<EngineResult> results = engine.RunBatch(batch);
      for (const EngineResult& result : results) {
        KNNQ_CHECK_MSG(result.ok(), "churn query failed");
        total.Merge(result.stats);
      }
      benchmark::DoNotOptimize(results);
      cursor += group;

      std::vector<MutationOp> ops;
      ops.reserve(ChurnUpdates());
      for (std::size_t u = 0; u < ChurnUpdates(); ++u) {
        if (live.size() >= 256 && (live.size() + u) % 2 == 0) {
          const std::size_t victim = next_rand() % live.size();
          ops.push_back(MutationOp::Erase(live[victim]));
          live.erase(live.begin() +
                     static_cast<std::ptrdiff_t>(victim));
        } else {
          // next_rand() yields 53 bits; scaling by 2^-53 gives a
          // uniform [0,1) without the modulo bias (and low-value
          // clustering) of `% width`.
          const double x = frame.min_x() +
                           frame.width() * static_cast<double>(
                                               next_rand()) *
                               0x1.0p-53;
          const double y = frame.min_y() +
                           frame.height() * static_cast<double>(
                                                next_rand()) *
                               0x1.0p-53;
          ops.push_back(MutationOp::Insert(x, y, next_id));
          live.push_back(next_id++);
        }
      }
      const EngineResult applied = engine.Mutate("clustered", ops);
      KNNQ_CHECK_MSG(applied.ok(), applied.status.ToString().c_str());
      updates += ops.size();
    }
    wall += timer.ElapsedSeconds();
    ran += specs.size();
  }

  RunRecord record;
  record.threads = threads;
  record.workload = "skewed-churn";
  record.cache_mb = cache_mb;
  record.wall_seconds = wall;
  record.queries = ran;
  record.updates = updates;
  record.cache_hits = total.cache_hits;
  record.cache_misses = total.cache_misses;
  record.cache_bytes = total.cache_bytes;
  Records()[name] = record;

  state.counters["queries"] = static_cast<double>(specs.size());
  state.counters["pool_threads"] = static_cast<double>(threads);
  state.counters["qps"] = record.qps();
  state.counters["updates"] = static_cast<double>(updates);
  state.counters["cache_hit_rate"] = record.hit_rate();
  ReportExecStats(state, total);
}

void BM_EngineSerial(benchmark::State& state) {
  const QueryEngine& engine = EngineWith(1, /*cache_mb=*/0);
  const std::vector<QuerySpec> specs = UniformSpecs();
  ExecStats total;
  double wall = 0.0;
  std::size_t ran = 0;
  for (auto _ : state) {
    total = ExecStats{};
    Stopwatch timer;
    for (const QuerySpec& spec : specs) {
      EngineResult result = engine.Run(spec);
      total.Merge(result.stats);
      benchmark::DoNotOptimize(result);
    }
    wall += timer.ElapsedSeconds();
    ran += specs.size();
  }
  RunRecord record;
  record.workload = "uniform";
  record.wall_seconds = wall;
  record.queries = ran;
  Records()["serial/uniform/uncached"] = record;
  state.counters["queries"] = static_cast<double>(specs.size());
  state.counters["qps"] = record.qps();
  ReportExecStats(state, total);
}

void BM_EngineBatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunBatchBenchmark(state,
                    "batch/uniform/uncached/t" + std::to_string(threads),
                    "uniform", threads, 0, UniformSpecs());
}

void BM_EngineBatchCached(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunBatchBenchmark(state,
                    "batch/uniform/cached/t" + std::to_string(threads),
                    "uniform", threads, kCacheMb, UniformSpecs());
}

void BM_EngineBatchSkewed(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunBatchBenchmark(state,
                    "batch/skewed/uncached/t" + std::to_string(threads),
                    "skewed", threads, 0, SkewedSpecs());
}

void BM_EngineBatchSkewedCached(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunBatchBenchmark(state,
                    "batch/skewed/cached/t" + std::to_string(threads),
                    "skewed", threads, kCacheMb, SkewedSpecs());
}

void BM_EngineChurn(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunChurnBenchmark(state,
                    "churn/skewed/uncached/t" + std::to_string(threads),
                    threads, 0);
}

void BM_EngineChurnCached(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  RunChurnBenchmark(state,
                    "churn/skewed/cached/t" + std::to_string(threads),
                    threads, kCacheMb);
}

BENCHMARK(BM_EngineSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK(BM_EngineBatch)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

BENCHMARK(BM_EngineBatchCached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(4);

BENCHMARK(BM_EngineBatchSkewed)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(4);

BENCHMARK(BM_EngineBatchSkewedCached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(4);

BENCHMARK(BM_EngineChurn)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(4);

BENCHMARK(BM_EngineChurnCached)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(4);

}  // namespace

/// Consumes this binary's own flags before benchmark::Initialize sees
/// argv: --workload FILE and --workload-skewed FILE replace the
/// uniform / skewed batches, --churn U:Q sets the churn benchmarks'
/// update:query ratio (default 1:4), --dump-workloads DIR writes the
/// generated batches as .knnql and exits. Returns -1 to continue into
/// the benchmarks, or a process exit code.
int HandleWorkloadArgs(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool takes_value =
        flag == "--workload" || flag == "--workload-skewed" ||
        flag == "--dump-workloads" || flag == "--churn";
    if (!takes_value) {
      argv[kept++] = argv[i];
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return 1;
    }
    const std::string value = argv[++i];
    if (flag == "--workload") {
      WorkloadPath("uniform") = value;
    } else if (flag == "--workload-skewed") {
      WorkloadPath("skewed") = value;
    } else if (flag == "--churn") {
      std::size_t updates = 0, queries = 0;
      if (std::sscanf(value.c_str(), "%zu:%zu", &updates, &queries) != 2 ||
          updates == 0 || queries == 0) {
        std::fprintf(stderr,
                     "--churn wants UPDATES:QUERIES (e.g. 1:4), got %s\n",
                     value.c_str());
        return 1;
      }
      ChurnUpdates() = updates;
      ChurnQueries() = queries;
    } else {
      DumpWorkloads(value);
      return 0;
    }
  }
  argc = kept;
  return -1;
}

/// Tracing cost, measured two ways. The hooks are always compiled in,
/// so the number that matters for serving is the DISABLED cost:
/// trace_hook_overhead = spans_per_query x per-span disabled cost x
/// serial qps, the fraction of query wall time spent in no-op
/// instrumentation. tools/check_bench.py gates it at <= 2%. The
/// enabled ratio (traced wall over untraced wall per query) is
/// reported for information only - EXPLAIN ANALYZE and sampled traces
/// are allowed to cost what they cost.
struct TraceOverhead {
  double span_ns = 0.0;
  double spans_per_query = 0.0;
  double hook_overhead = 0.0;
  double enabled_ratio = 0.0;
};

TraceOverhead MeasureTraceOverhead() {
  TraceOverhead result;
  const auto serial = Records().find("serial/uniform/uncached");
  if (serial == Records().end() || serial->second.wall_seconds <= 0.0 ||
      serial->second.queries == 0) {
    return result;  // Filtered run: nothing to relate the cost to.
  }

  // Disabled-span unit cost: construct/destruct with no trace
  // installed, the state every serving query runs in.
  constexpr std::size_t kSpans = 4'000'000;
  Stopwatch hook_timer;
  for (std::size_t i = 0; i < kSpans; ++i) {
    obs::ScopedSpan span("bench_hook");
    benchmark::DoNotOptimize(span);
  }
  result.span_ns =
      hook_timer.ElapsedSeconds() * 1e9 / static_cast<double>(kSpans);

  // Spans per query and the enabled-tracing wall: one traced pass over
  // the uniform workload.
  const QueryEngine& engine = EngineWith(1, /*cache_mb=*/0);
  const std::vector<QuerySpec> specs = UniformSpecs();
  std::size_t spans = 0;
  Stopwatch traced_timer;
  for (const QuerySpec& spec : specs) {
    const EngineResult run = engine.RunAnalyzed(spec);
    KNNQ_CHECK_MSG(run.ok() && run.trace != nullptr,
                   "traced bench query failed");
    spans += obs::CountSpans(run.trace->root());
  }
  const double traced_wall = traced_timer.ElapsedSeconds();

  result.spans_per_query =
      static_cast<double>(spans) / static_cast<double>(specs.size());
  result.hook_overhead = result.spans_per_query * result.span_ns * 1e-9 *
                         serial->second.qps();
  const double untraced_per_query =
      serial->second.wall_seconds /
      static_cast<double>(serial->second.queries);
  result.enabled_ratio =
      traced_wall / static_cast<double>(specs.size()) / untraced_per_query;
  return result;
}

/// The HTTP observability plane's steady-state cost: one registry
/// render (what a GET /metrics or METRICS verb pays) plus one history
/// sampling pass (what the background sampler pays per interval). At
/// the default 1 Hz sampler with a 1 Hz external scraper that is one
/// of each per second, so obs_plane_overhead = (render + sample)
/// seconds per core-second. tools/check_bench.py gates it at <= 2%,
/// the same budget as the disabled trace hooks.
struct ObsPlaneOverhead {
  double render_ns = 0.0;
  double sample_ns = 0.0;
  double plane_overhead = 0.0;
};

ObsPlaneOverhead MeasureObsPlaneOverhead() {
  ObsPlaneOverhead result;
  // A real Server over a real engine: the registry carries exactly
  // the instruments a serving process scrapes (server counters and
  // latency histograms, engine totals, cache stats, process gauges).
  // Nothing is Start()ed - rendering and sampling need no sockets.
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(MakeCatalog(), options);
  server::Server server(&engine, server::ServerOptions{});

  std::string rendered = server.RenderPrometheus();  // Warm buffers.
  benchmark::DoNotOptimize(rendered);
  constexpr std::size_t kRenders = 500;
  Stopwatch render_timer;
  for (std::size_t i = 0; i < kRenders; ++i) {
    rendered = server.RenderPrometheus();
    benchmark::DoNotOptimize(rendered);
  }
  result.render_ns = render_timer.ElapsedSeconds() * 1e9 /
                     static_cast<double>(kRenders);

  constexpr std::size_t kSamples = 2000;
  Stopwatch sample_timer;
  for (std::size_t i = 0; i < kSamples; ++i) {
    server.history()->SampleOnce();
  }
  result.sample_ns = sample_timer.ElapsedSeconds() * 1e9 /
                     static_cast<double>(kSamples);

  result.plane_overhead = (result.render_ns + result.sample_ns) * 1e-9;
  return result;
}

/// Writes every recorded run plus derived summary ratios. Called from
/// main after the benchmarks finish; a partial run (filtered
/// benchmarks) writes whatever rows exist and null summary fields.
void WriteBenchJson() {
  const char* env = std::getenv("KNNQ_BENCH_JSON");
  const std::string path =
      env != nullptr ? env : "BENCH_engine_batch.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }

  std::fprintf(out, "{\n  \"bench\": \"engine_batch\",\n");
  std::fprintf(out, "  \"scale\": %zu,\n", Scale());
  std::fprintf(out, "  \"benchmarks\": [\n");
  bool first = true;
  for (const auto& [name, r] : Records()) {
    std::fprintf(
        out,
        "%s    {\"name\": \"%s\", \"threads\": %zu, \"workload\": "
        "\"%s\", \"cache_mb\": %zu, \"wall_seconds\": %.6f, "
        "\"queries\": %zu, \"updates\": %zu, \"qps\": %.2f, "
        "\"cache_hits\": %zu, \"cache_misses\": %zu, "
        "\"cache_hit_rate\": %.4f, \"cache_bytes\": %zu}",
        first ? "" : ",\n", name.c_str(), r.threads, r.workload.c_str(),
        r.cache_mb, r.wall_seconds, r.queries, r.updates, r.qps(),
        r.cache_hits, r.cache_misses, r.hit_rate(), r.cache_bytes);
    first = false;
  }
  std::fprintf(out, "\n  ],\n");

  // Summary: the cached-vs-uncached ratios CI gates on. A ratio is the
  // uncached wall time over the cached wall time at equal thread count
  // (> 1 means the cache won).
  auto ratio = [](const char* cached, const char* uncached) {
    const auto& records = Records();
    const auto c = records.find(cached);
    const auto u = records.find(uncached);
    if (c == records.end() || u == records.end()) return 0.0;
    if (c->second.wall_seconds <= 0.0) return 0.0;
    return u->second.wall_seconds / c->second.wall_seconds;
  };
  const double skewed_1 =
      ratio("batch/skewed/cached/t1", "batch/skewed/uncached/t1");
  const double skewed_4 =
      ratio("batch/skewed/cached/t4", "batch/skewed/uncached/t4");
  const double uniform_4 =
      ratio("batch/uniform/cached/t4", "batch/uniform/uncached/t4");
  double skewed_hit_rate = 0.0;
  if (const auto it = Records().find("batch/skewed/cached/t4");
      it != Records().end()) {
    skewed_hit_rate = it->second.hit_rate();
  }
  // Churn vs read-only throughput at the same engine config: the
  // "updates are not allowed to crater serving" ratio check_bench.py
  // gates at >= 0.5x.
  const auto qps_ratio = [](const char* num, const char* den) {
    const auto& records = Records();
    const auto n = records.find(num);
    const auto d = records.find(den);
    if (n == records.end() || d == records.end()) return 0.0;
    if (d->second.qps() <= 0.0) return 0.0;
    return n->second.qps() / d->second.qps();
  };
  const double churn_cached =
      qps_ratio("churn/skewed/cached/t4", "batch/skewed/cached/t4");
  const double churn_uncached =
      qps_ratio("churn/skewed/uncached/t4", "batch/skewed/uncached/t4");
  const TraceOverhead trace = MeasureTraceOverhead();
  const ObsPlaneOverhead obs = MeasureObsPlaneOverhead();
  std::fprintf(out,
               "  \"summary\": {\"skewed_speedup_t1\": %.3f, "
               "\"skewed_speedup_t4\": %.3f, "
               "\"uniform_cached_ratio_t4\": %.3f, "
               "\"skewed_hit_rate\": %.4f, "
               "\"churn_updates_per_queries\": \"%zu:%zu\", "
               "\"churn_read_ratio_t4\": %.3f, "
               "\"churn_read_ratio_uncached_t4\": %.3f, "
               "\"trace_span_ns\": %.2f, "
               "\"trace_spans_per_query\": %.2f, "
               "\"trace_hook_overhead\": %.6f, "
               "\"trace_enabled_ratio\": %.3f, "
               "\"obs_render_ns\": %.0f, "
               "\"obs_sample_ns\": %.0f, "
               "\"obs_plane_overhead\": %.8f}\n}\n",
               skewed_1, skewed_4, uniform_4, skewed_hit_rate,
               ChurnUpdates(), ChurnQueries(), churn_cached,
               churn_uncached, trace.span_ns, trace.spans_per_query,
               trace.hook_overhead, trace.enabled_ratio,
               obs.render_ns, obs.sample_ns, obs.plane_overhead);
  std::fclose(out);
  std::printf("wrote %s (skewed speedup t1=%.2fx t4=%.2fx, hit rate "
              "%.1f%%, churn ratio %.2fx, trace hook overhead %.4f%%, "
              "obs plane overhead %.4f%%)\n",
              path.c_str(), skewed_1, skewed_4, 100.0 * skewed_hit_rate,
              churn_cached, 100.0 * trace.hook_overhead,
              100.0 * obs.plane_overhead);
}

}  // namespace knnq::bench

int main(int argc, char** argv) {
  if (const int rc = knnq::bench::HandleWorkloadArgs(argc, argv); rc >= 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  knnq::bench::WriteBenchJson();
  return 0;
}
