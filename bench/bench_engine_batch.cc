// Engine batch throughput: RunBatch of a mixed bag of all six query
// shapes over worker pools of increasing size, against serial Run.
//
// Expected shape: near-linear speedup with the pool size up to the
// machine's core count, because the shared SpatialIndex instances are
// immutable and every query runs lock-free on its own scratch state.
// The first iteration also asserts that the batch output is identical
// to serial execution - the equivalence the engine guarantees.

#include <cstddef>
#include <vector>

#include "bench/bench_common.h"
#include "benchmark/benchmark.h"
#include "src/common/check.h"
#include "src/engine/query_engine.h"

namespace knnq::bench {
namespace {

constexpr std::size_t kBatchSize = 264;  // 44 rounds x 6 shapes >= 256.

Catalog MakeCatalog() {
  Catalog catalog;
  const std::size_t n = 4000 * Scale();
  Status s = catalog.AddRelation("uniform",
                                 Uniform(n, /*seed=*/7001, /*first_id=*/0));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "city", Berlin(n, /*seed=*/7002, /*first_id=*/10000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  s = catalog.AddRelation(
      "clustered",
      Clustered(8, n / 16, /*seed=*/7003, /*first_id=*/20000000));
  KNNQ_CHECK_MSG(s.ok(), s.ToString().c_str());
  return catalog;
}

std::vector<QuerySpec> MixedSpecs() {
  std::vector<QuerySpec> specs;
  specs.reserve(kBatchSize);
  const BoundingBox frame = Frame();
  for (std::size_t i = 0; specs.size() < kBatchSize; ++i) {
    const double dx = frame.min_x() +
                      static_cast<double>((i * 997) % 28000);
    const double dy = frame.min_y() +
                      static_cast<double>((i * 613) % 22000);
    const std::size_t k = 1 + i % 8;
    specs.push_back(TwoSelectsSpec{
        .relation = "city",
        .s1 = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k},
        .s2 = {.focal = {.id = -1, .x = dx + 400, .y = dy + 300},
               .k = k + 8},
    });
    specs.push_back(SelectInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .select = {.focal = {.id = -1, .x = dx, .y = dy}, .k = k + 4},
    });
    specs.push_back(SelectOuterJoinSpec{
        .outer = "city",
        .inner = "uniform",
        .join_k = 1 + k % 4,
        .select = {.focal = {.id = -1, .x = dy, .y = dx / 2}, .k = 8 + k},
    });
    specs.push_back(UnchainedJoinsSpec{
        .a = "uniform",
        .b = "city",
        .c = "clustered",
        .k_ab = 1 + k % 3,
        .k_cb = 1 + (k + 1) % 3,
    });
    specs.push_back(ChainedJoinsSpec{
        .a = "clustered",
        .b = "city",
        .c = "uniform",
        .k_ab = 1 + k % 3,
        .k_bc = 1 + (k + 2) % 3,
    });
    specs.push_back(RangeInnerJoinSpec{
        .outer = "uniform",
        .inner = "city",
        .join_k = k,
        .range = BoundingBox(dx, dy, dx + 1500, dy + 1200),
    });
  }
  return specs;
}

/// Memoized engine per pool size (index construction is not what this
/// bench measures).
const QueryEngine& EngineWith(std::size_t threads) {
  static auto& cache =
      *new std::map<std::size_t, std::unique_ptr<QueryEngine>>();
  auto& slot = cache[threads];
  if (slot == nullptr) {
    EngineOptions options;
    options.num_threads = threads;
    slot = std::make_unique<QueryEngine>(MakeCatalog(), options);
  }
  return *slot;
}

/// Byte-identical equivalence check, run once per pool size.
void CheckBatchEqualsSerial(const QueryEngine& engine,
                            const std::vector<QuerySpec>& specs) {
  const std::vector<EngineResult> batch = engine.RunBatch(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const EngineResult serial = engine.Run(specs[i]);
    KNNQ_CHECK_MSG(batch[i].ok() && serial.ok(),
                   "engine bench query failed");
    KNNQ_CHECK_MSG(batch[i].output == serial.output,
                   "batch result differs from serial execution");
  }
}

void BM_EngineSerial(benchmark::State& state) {
  const QueryEngine& engine = EngineWith(1);
  const std::vector<QuerySpec> specs = MixedSpecs();
  ExecStats total;
  for (auto _ : state) {
    total = ExecStats{};
    for (const QuerySpec& spec : specs) {
      EngineResult result = engine.Run(spec);
      total.Merge(result.stats);
      benchmark::DoNotOptimize(result);
    }
  }
  state.counters["queries"] = static_cast<double>(specs.size());
  ReportExecStats(state, total);
}

void BM_EngineBatch(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const QueryEngine& engine = EngineWith(threads);
  const std::vector<QuerySpec> specs = MixedSpecs();
  CheckBatchEqualsSerial(engine, specs);
  ExecStats total;
  for (auto _ : state) {
    total = ExecStats{};
    std::vector<EngineResult> results = engine.RunBatch(specs);
    for (const EngineResult& result : results) {
      total.Merge(result.stats);
    }
    benchmark::DoNotOptimize(results);
  }
  state.counters["queries"] = static_cast<double>(specs.size());
  state.counters["pool_threads"] = static_cast<double>(threads);
  ReportExecStats(state, total);
}

BENCHMARK(BM_EngineSerial)->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK(BM_EngineBatch)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
