// Figure 25: two chained kNN-joins - Nested Join (cached) vs Join
// Intersection, varying the number of clusters in B.
//
// Paper shape: the Nested Join wins and the gap grows with the number
// of clusters, because clusters of B that no point of A reaches are
// never joined with C, while Join Intersection blindly joins every b.

#include "benchmark/benchmark.h"
#include "bench/bench_common.h"
#include "src/core/chained_joins.h"

namespace knnq::bench {
namespace {

ChainedJoinsQuery MakeQuery(std::size_t b_clusters) {
  // A is tightly clustered so only a fraction of B's clusters is
  // reachable; C is a city snapshot.
  const PointSet& a = Clustered(2, 4000 * Scale(), /*seed=*/711,
                                /*first_id=*/0);
  const PointSet& b = Clustered(b_clusters, 4000 * Scale(), /*seed=*/722,
                                /*first_id=*/10000000);
  const PointSet& c =
      Berlin(64000 * Scale(), /*seed=*/733, /*first_id=*/20000000);
  return ChainedJoinsQuery{
      .a = &IndexOf(a),
      .b = &IndexOf(b),
      .c = &IndexOf(c),
      .k_ab = 10,
      .k_bc = 10,
  };
}

void BM_Fig25_NestedJoin(benchmark::State& state) {
  const auto query =
      MakeQuery(static_cast<std::size_t>(state.range(0)));
  ChainedJoinsStats stats;
  for (auto _ : state) {
    stats = ChainedJoinsStats{};
    auto result = ChainedJoinsNested(query, /*cache_bc=*/true, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["b_clusters"] = static_cast<double>(state.range(0));
  state.counters["bc_probes"] =
      static_cast<double>(stats.b_neighborhoods_computed);
}

void BM_Fig25_JoinIntersection(benchmark::State& state) {
  const auto query =
      MakeQuery(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = ChainedJoinsJoinIntersection(query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["b_clusters"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_Fig25_NestedJoin)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(2, 16, 2);

BENCHMARK(BM_Fig25_JoinIntersection)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->DenseRange(2, 16, 2);

}  // namespace
}  // namespace knnq::bench

BENCHMARK_MAIN();
